//! The std-only HTTP/1.1 server: a readiness-based event loop feeding
//! a fixed worker thread pool, persistent (keep-alive) connections
//! with request pipelining, JSON in and out, and a durable write path.
//!
//! # Endpoints
//!
//! | path               | request variant          | cached (scope) |
//! |--------------------|--------------------------|----------------|
//! | `/datasets`        | `ListDatasets`           | yes (`sys:datasets`) |
//! | `/experiments`     | `ListExperiments`        | yes (`sys:experiments`) |
//! | `/profile`         | `ProfileDataset`         | yes (`ds:<D>`) |
//! | `/matrix`          | `GetConfusionMatrix`     | yes (`exp:<E>`) |
//! | `/metrics`         | `GetMetrics`             | yes (`exp:<E>`) |
//! | `/diagram`         | `GetDiagram`             | yes (`exp:<E>`) |
//! | `/compare`         | `CompareExperiments`     | yes (per exp.) |
//! | `/venn`            | `CompareExperiments` (gold appended) | yes (per exp.) |
//! | `/cluster-metrics` | `GetClusterMetrics`      | yes (`exp:<E>`) |
//! | `/ratios`          | `GetAttributeRatios`     | yes (`exp:<E>`) |
//! | `/errors`          | `GetErrorProfile`        | yes (`exp:<E>`) |
//! | `/quality`         | `GetQualitySignals`      | yes (`exp:<E>`) |
//! | `/stats`           | cache counters           | no             |
//! | `/metrics` (bare)  | Prometheus exposition    | never          |
//! | `/debug/traces`    | last-N request traces    | never          |
//!
//! Write endpoints (threaded through the same `api::Request` enum):
//!
//! * `POST /experiments?dataset=<D>&name=<N>` — import an experiment
//!   from a CSV request body (`id1,id2[,similarity]`, native ids).
//! * `DELETE /experiments/<N>` — remove an experiment.
//! * `POST /snapshot/save` — compact WAL + snapshot (durable stores).
//!
//! # Write path and durability
//!
//! Writes serialize on one writer lock and follow the WAL protocol
//! (see [`frost_storage::durable`]): validate and build the
//! import-time artifacts under a **read** lock (imports stay cheap for
//! concurrent readers), append + fsync the op to the WAL, then take
//! the **write** lock only for the cheap in-memory insert. A `frostd`
//! started from a `FROSTB` file runs durably (WAL at `<store>.wal`,
//! `--fsync` policy); one started from a CSV directory accepts the
//! same writes volatile, in memory only. After a write, only the
//! touched cache *scopes* are invalidated — importing one experiment
//! does not evict `/datasets` or another experiment's cached bodies.
//!
//! Worker threads are panic-isolated: a panicking handler answers
//! `500` and the worker returns to the pool.
//!
//! # Connection model
//!
//! Connections are owned by [`crate::event_loop`]'s poll threads
//! (`--event-threads`), not by workers: sockets are non-blocking, and
//! each event thread multiplexes its share of connections over a
//! vendored `poll(2)` shim — an idle keep-alive connection costs a
//! descriptor and a poll slot, not a thread. The event thread does the
//! reads and parses heads out of a per-connection [`RequestBuffer`]:
//! reads may split a request head at any byte boundary, and one read
//! may carry several pipelined requests back-to-back — both are
//! handled by buffering and re-scanning incrementally. Only *complete*
//! request heads are dispatched to the worker pool (via [`execute`]);
//! the finished response is queued back to the event thread, which
//! writes it out under write-readiness. One request per connection is
//! in flight at a time, so pipelined responses go out in request order
//! with no reordering. A connection closes when the client asks
//! (`Connection: close`, or HTTP/1.0), when it has been idle longer
//! than [`ServeOptions::idle_timeout`], after
//! [`ServeOptions::max_requests`] responses (so a persistent client
//! cannot starve the server forever), or after any parse error (one
//! `400` is sent, then the socket closes).
//!
//! # Caching
//!
//! Two tiers, both generation-stamped by the same rule — any mutation
//! through [`ServerState::with_store_mut`] bumps the generation and
//! logically evicts every entry of both tiers at once:
//!
//! 1. rendered JSON **bodies** ([`ShardedCache<Arc<str>>`]) — a hit
//!    skips the store computation *and* the JSON rendering;
//! 2. fully serialized HTTP **response bytes**
//!    ([`ShardedCache<CachedResponse>`]) — a hit is written with one
//!    buffered `write_all` of a shared `Arc<[u8]>`: no JSON
//!    re-rendering and no response-building allocation on the hot
//!    path (the remaining per-request work is parsing the head and
//!    routing the target). Cached responses carry a content-derived
//!    strong `ETag`; a request presenting it via `If-None-Match` gets
//!    a bodyless `304 Not Modified` instead of the payload.
//!
//! [`ServerState::json_renders`] counts actual JSON serializations, so
//! tests can pin that the hot path performs zero of them. Listings
//! stay uncached — they are cheaper than the cache probe.
//!
//! Bodies are rendered by [`json::response_to_json`], so an HTTP
//! response is byte-identical to rendering the in-process
//! [`api::handle`] result — the invariant the loopback golden tests
//! pin, including across reused connections and pipelined clients.

use crate::event_loop;
use crate::json::{self, response_to_json};
use crate::replication::{self, ReplicationHub, Role, StreamPreamble};
use crate::telemetry::{self, Endpoint, Stage, Telemetry, Trace};
use frost_core::clustering::Clustering;
use frost_storage::api::{self, Request};
use frost_storage::cache::{CacheWeight, ShardedCache};
use frost_storage::durable::{DurableError, DurableStore};
use frost_storage::store::{StoreError, StoredExperiment};
use frost_storage::wal::{SnapshotId, WalOp, WAL_HEADER_LEN};
use frost_storage::BenchmarkStore;
use parking_lot::RwLock;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shards in each result-cache tier; 16 spreads a small thread pool's
/// keys with negligible memory overhead.
const CACHE_SHARDS: usize = 16;

/// Request head size cap.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024;

/// Request body size cap (CSV imports).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Default for [`ServeOptions::idle_timeout`].
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 5_000;

/// Default for [`ServeOptions::max_requests`].
pub const DEFAULT_MAX_REQUESTS: usize = 10_000;

/// Default for [`ServeOptions::max_queued`].
pub const DEFAULT_MAX_QUEUED: usize = 256;

/// Default for [`ServeOptions::event_threads`]. One loop comfortably
/// multiplexes thousands of mostly-idle connections; add more only
/// when parse/write CPU in the loop itself becomes the bottleneck.
pub const DEFAULT_EVENT_THREADS: usize = 1;

/// `Retry-After` seconds advertised on every shed (`503`) response.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Sliding-window length for the recent shed rate `/readyz` reports.
const SHED_WINDOW_SECS: u64 = 8;

/// Minimum admission events in the window before the shed rate can
/// flip `/readyz` — a single early shed must not mark a quiet server
/// unready.
const READY_MIN_WINDOW_EVENTS: u64 = 16;

/// Longest a `/replication/wal` long poll is held open waiting for new
/// frames (the `wait_ms` parameter is clamped to this).
const MAX_POLL_WAIT_MS: u64 = 10_000;

/// How long a semi-sync (`--sync-replication`) write waits for a
/// replica to prove it durable before answering `503` (the write stays
/// durable locally either way).
const SYNC_ACK_TIMEOUT: Duration = Duration::from_secs(5);

/// Tunables of the connection path.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads in the fixed pool: they evaluate complete
    /// requests the event loops hand them, never own sockets.
    pub workers: usize,
    /// Event-loop threads multiplexing every connection's socket via
    /// `poll(2)` (non-blocking reads/writes, readiness-driven). A few
    /// suffice for thousands of mostly-idle keep-alive connections —
    /// connections cost file descriptors, not threads.
    pub event_threads: usize,
    /// How long a keep-alive connection may sit between reads before
    /// the worker closes it and returns to the pool. The same bound
    /// applies to writes (a client that stops reading cannot pin a
    /// worker in `write_all`) and, as a whole-head deadline, to a
    /// trickled (slow-loris) request head: a head that has not
    /// completed one `idle_timeout` after its first byte is answered
    /// `400` and cut, even if every individual read stays fast.
    pub idle_timeout: Duration,
    /// Responses served on one connection before the server closes it
    /// (advertised with `Connection: close` on the last response), so
    /// the fixed pool cannot be starved by immortal connections.
    pub max_requests: usize,
    /// Admission queue bound: accepted connections waiting for a pool
    /// worker. When the queue is full, new connections are answered
    /// with a canned `503` + `Retry-After` by the accept thread — no
    /// parsing, no evaluation, no worker time.
    pub max_queued: usize,
    /// Per-request deadline. The first request on a connection clocks
    /// from **admission** (queue wait counts — a request that already
    /// waited out its deadline in the queue is shed before any work);
    /// later requests clock from their first buffered byte. A request
    /// past its deadline is never evaluated: it is shed with `503` +
    /// `Retry-After`, and the remaining deadline bounds socket reads
    /// and class-gate waits. `None` disables deadlines.
    pub request_deadline: Option<Duration>,
    /// Concurrency limit of the compute-heavy endpoint class
    /// (`/compare`, `/diagram`, `/venn`): at most this many cache-miss
    /// computations run at once, so expensive sweeps cannot occupy
    /// every worker and starve cheap cached GETs. `None` = half the
    /// worker pool (min 1). Cache *hits* on these endpoints bypass the
    /// gate — a saturated class degrades to serving cached bodies, not
    /// to shedding them.
    pub compute_concurrency: Option<usize>,
    /// Concurrency limit of the mutating class (`POST`/`DELETE`):
    /// bounds writers waiting on the serialized write path. `None` =
    /// a quarter of the worker pool (min 1).
    pub write_concurrency: Option<usize>,
    /// `/readyz` flips to not-ready when the recent shed rate
    /// (sheds / admission events over the last [`SHED_WINDOW_SECS`]
    /// seconds) exceeds this threshold.
    pub shed_ready_threshold: f64,
    /// Total tracked-byte budget across both response-cache tiers
    /// (split evenly), enforced with stale-first LRU eviction. `None`
    /// keeps the per-shard entry caps as the only bound.
    pub cache_budget: Option<usize>,
    /// Test-only: expose `GET /debug/panic`, which panics inside the
    /// request handler — the regression hook for worker panic
    /// isolation. Never enabled by the CLI.
    pub debug_panic: bool,
    /// Test-only: expose `GET /debug/sleep?ms=N`, a compute-class
    /// endpoint that holds its worker (and compute permit) for `N`
    /// milliseconds — the deterministic load generator the overload
    /// tests saturate the server with. Never enabled by the CLI.
    pub debug_sleep: bool,
    /// Per-request tracing and latency histograms (`GET /metrics`,
    /// `GET /debug/traces`). On by default — the hot-path cost is two
    /// extra `Instant::now()` calls and a handful of relaxed atomic
    /// adds per request, gated by the bench's telemetry-overhead
    /// phase. Disabling keeps `/metrics` serving counters/gauges but
    /// leaves every histogram empty and the trace ring idle.
    pub telemetry: bool,
    /// Log any request slower than this end-to-end as one structured
    /// `frostd: slow-request …` line on stderr (`--slow-request-ms`).
    /// `None` disables the slow log.
    pub slow_request: Option<Duration>,
    /// Capacity of the `/debug/traces` ring (`--trace-ring`).
    pub trace_ring: usize,
    /// Run as a replica of this primary (`host:port`): bootstrap from
    /// its snapshot when the local store file is absent, tail its WAL,
    /// serve the full read surface, and answer writes with `503` plus
    /// a `Frost-Primary` hint. Requires a durable (FROSTB) store.
    pub replica_of: Option<String>,
    /// Replica readiness gate: `/readyz` reports not-ready once
    /// replication lag exceeds this many milliseconds (`None` = lag
    /// never gates readiness). Lag oscillates between zero and roughly
    /// the poll interval on a healthy replica, so values under ~2000
    /// flap.
    pub max_replica_lag: Option<u64>,
    /// Semi-synchronous replication (primary side): a mutating write
    /// is acknowledged only after a replica has proven it durable by
    /// polling past it (or after a bounded wait, in which case the
    /// client gets `503` — the write *is* durable locally and will be
    /// re-shipped). Off = asynchronous shipping with a bounded loss
    /// window on failover.
    pub sync_replication: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            event_threads: DEFAULT_EVENT_THREADS,
            idle_timeout: Duration::from_millis(DEFAULT_IDLE_TIMEOUT_MS),
            max_requests: DEFAULT_MAX_REQUESTS,
            max_queued: DEFAULT_MAX_QUEUED,
            request_deadline: None,
            compute_concurrency: None,
            write_concurrency: None,
            shed_ready_threshold: 0.9,
            cache_budget: None,
            debug_panic: false,
            debug_sleep: false,
            telemetry: true,
            slow_request: None,
            trace_ring: crate::telemetry::DEFAULT_TRACE_RING,
            replica_of: None,
            max_replica_lag: None,
            sync_replication: false,
        }
    }
}

// ---------------------------------------------------------------------
// Overload accounting and cost classes
// ---------------------------------------------------------------------

/// Why a request (or connection) was shed with a `503`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full — rejected by the accept thread
    /// without parsing anything.
    QueueFull,
    /// The request's deadline expired before evaluation could start
    /// (queue wait, slow arrival, or a saturated class gate).
    Deadline,
    /// The request's cost class was at its concurrency limit and no
    /// permit freed up within the allowed wait.
    ClassSaturated,
    /// The server is draining for shutdown; queued-but-unstarted
    /// connections are answered instead of silently dropped.
    Draining,
}

impl ShedReason {
    fn message(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "server overloaded: admission queue full",
            ShedReason::Deadline => "request deadline exceeded before evaluation",
            ShedReason::ClassSaturated => "server overloaded: request class saturated",
            ShedReason::Draining => "server draining: connection not served",
        }
    }
}

/// Endpoint cost classes: each is gated independently so one class
/// cannot starve another (see [`ServeOptions::compute_concurrency`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Cheap GETs (cache probes, listings, health, stats) — never
    /// gated; bounded by the worker pool itself.
    Cached,
    /// Compute-heavy GETs: `/compare`, `/diagram`, `/venn` (and the
    /// test-only `/debug/sleep`).
    Compute,
    /// Mutating requests: `POST`, `DELETE`.
    Write,
}

fn classify(method: &str, path: &str) -> Class {
    if method != "GET" {
        Class::Write
    } else if matches!(path, "/compare" | "/diagram" | "/venn" | "/debug/sleep") {
        Class::Compute
    } else {
        Class::Cached
    }
}

/// One shed-rate window slot (a one-second bucket, reused modulo the
/// window length). Counts are heuristically reset when the slot is
/// reused for a new second; tiny cross-thread races only blur the
/// readiness heuristic, never correctness.
#[derive(Default)]
struct WindowSlot {
    epoch: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// Overload counters surfaced by `/stats` and `/readyz`. All atomics:
/// the hot path only ever pays relaxed increments.
#[derive(Default)]
pub struct OverloadStats {
    queue_depth: AtomicI64,
    queue_max_depth: AtomicI64,
    admitted: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    shed_class_saturated: AtomicU64,
    shed_draining: AtomicU64,
    deadline_exceeded: AtomicU64,
    method_not_allowed: AtomicU64,
    inflight_cached: AtomicUsize,
    inflight_compute: AtomicUsize,
    inflight_write: AtomicUsize,
    window: [WindowSlot; SHED_WINDOW_SECS as usize],
}

impl OverloadStats {
    pub(crate) fn queue_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
        self.queue_max_depth.fetch_max(depth, Ordering::AcqRel);
    }

    pub(crate) fn queue_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::AcqRel);
    }

    /// Connections currently waiting in the admission queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Acquire).max(0) as u64
    }

    /// High-water mark of [`queue_depth`](Self::queue_depth).
    pub fn queue_max_depth(&self) -> u64 {
        self.queue_max_depth.load(Ordering::Acquire).max(0) as u64
    }

    /// Connections admitted (queued for a worker) since start-up.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Sheds by reason, in declaration order: queue-full, deadline,
    /// class-saturated, draining.
    pub fn sheds(&self) -> [u64; 4] {
        [
            self.shed_queue_full.load(Ordering::Relaxed),
            self.shed_deadline.load(Ordering::Relaxed),
            self.shed_class_saturated.load(Ordering::Relaxed),
            self.shed_draining.load(Ordering::Relaxed),
        ]
    }

    /// Requests that observed an expired deadline at any point — shed
    /// before evaluation, or detected late after their (already
    /// admitted) evaluation finished.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Requests refused with `405 Method Not Allowed`. Counted only
    /// *after* the deadline check — a past-deadline request with a
    /// bogus method is shed, not answered per-method.
    pub fn method_not_allowed(&self) -> u64 {
        self.method_not_allowed.load(Ordering::Relaxed)
    }

    pub(crate) fn note_method_not_allowed(&self) {
        self.method_not_allowed.fetch_add(1, Ordering::Relaxed);
    }

    fn slot(&self, secs: u64) -> &WindowSlot {
        let slot = &self.window[(secs % SHED_WINDOW_SECS) as usize];
        if slot.epoch.swap(secs, Ordering::Relaxed) != secs {
            slot.admitted.store(0, Ordering::Relaxed);
            slot.shed.store(0, Ordering::Relaxed);
        }
        slot
    }

    fn note_admitted(&self, secs: u64) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.slot(secs).admitted.fetch_add(1, Ordering::Relaxed);
    }

    fn note_shed(&self, reason: ShedReason, secs: u64) {
        let counter = match reason {
            ShedReason::QueueFull => &self.shed_queue_full,
            ShedReason::Deadline => &self.shed_deadline,
            ShedReason::ClassSaturated => &self.shed_class_saturated,
            ShedReason::Draining => &self.shed_draining,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if reason == ShedReason::Deadline {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        }
        self.slot(secs).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A deadline that expired *during* an already-admitted
    /// evaluation: the response is still served (work is never
    /// cancelled mid-compute), but the lateness is counted.
    pub(crate) fn note_deadline_late(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// `(sheds, total events)` over the trailing window.
    fn window_counts(&self, now_secs: u64) -> (u64, u64) {
        let mut shed = 0;
        let mut total = 0;
        for slot in &self.window {
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if epoch + SHED_WINDOW_SECS > now_secs && epoch <= now_secs {
                let s = slot.shed.load(Ordering::Relaxed);
                shed += s;
                total += s + slot.admitted.load(Ordering::Relaxed);
            }
        }
        (shed, total)
    }

    fn gauge(&self, class: Class) -> &AtomicUsize {
        match class {
            Class::Cached => &self.inflight_cached,
            Class::Compute => &self.inflight_compute,
            Class::Write => &self.inflight_write,
        }
    }

    /// In-flight gauges `(cached, compute, write)`: requests currently
    /// being served per class (for compute/write: currently holding a
    /// class permit, i.e. doing the expensive part).
    pub fn inflight(&self) -> (usize, usize, usize) {
        (
            self.inflight_cached.load(Ordering::Relaxed),
            self.inflight_compute.load(Ordering::Relaxed),
            self.inflight_write.load(Ordering::Relaxed),
        )
    }
}

/// A counting semaphore: the per-class concurrency gate.
struct Gate {
    limit: usize,
    busy: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(limit: usize) -> Self {
        Self {
            limit: limit.max(1),
            busy: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Acquires a permit, waiting at most `wait`. Returns whether a
    /// permit was obtained.
    fn acquire(&self, wait: Duration) -> bool {
        let deadline = Instant::now() + wait;
        let mut busy = self.busy.lock().expect("gate lock");
        while *busy >= self.limit {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            busy = self
                .freed
                .wait_timeout(busy, remaining)
                .expect("gate lock")
                .0;
        }
        *busy += 1;
        true
    }

    fn release(&self) {
        *self.busy.lock().expect("gate lock") -= 1;
        self.freed.notify_one();
    }
}

/// The per-class gates one `serve_with` call shares across its pool.
struct ClassGates {
    compute: Gate,
    write: Gate,
}

impl ClassGates {
    fn for_options(options: &ServeOptions) -> Self {
        let workers = options.workers.max(1);
        Self {
            compute: Gate::new(options.compute_concurrency.unwrap_or((workers / 2).max(1))),
            write: Gate::new(options.write_concurrency.unwrap_or((workers / 4).max(1))),
        }
    }
}

/// An RAII gate permit, released on drop — including on handler
/// panics (route runs under `catch_unwind`), so an unwinding worker
/// can never leak a permit and shrink a class forever.
struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

/// An RAII in-flight gauge bump (one per routed request, by class).
struct GaugeGuard<'a>(&'a AtomicUsize);

impl<'a> GaugeGuard<'a> {
    fn new(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        Self(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-request routing context: the class gates plus the request's
/// absolute deadline (when configured).
struct RequestContext<'a> {
    options: &'a ServeOptions,
    gates: &'a ClassGates,
    deadline: Option<Instant>,
    /// The request's lifecycle trace, when telemetry is on.
    trace: Option<&'a Trace>,
}

impl RequestContext<'_> {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// How long a request may wait for a class permit: its remaining
    /// deadline, or one idle timeout when deadlines are off.
    fn gate_wait(&self) -> Duration {
        match self.deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => self.options.idle_timeout,
        }
    }

    /// Acquires the class's concurrency permit ([`Class::Cached`] has
    /// no gate). `Err` = the class stayed saturated for the whole
    /// allowed wait — the caller sheds.
    fn gate_for(&self, class: Class) -> Result<Option<Permit<'_>>, ShedReason> {
        let gate = match class {
            Class::Cached => return Ok(None),
            Class::Compute => &self.gates.compute,
            Class::Write => &self.gates.write,
        };
        if !gate.acquire(self.gate_wait()) {
            return Err(ShedReason::ClassSaturated);
        }
        if let Some(trace) = self.trace {
            trace.stamp(Stage::GateAcquired);
        }
        Ok(Some(Permit { gate }))
    }
}

/// What routing produced: a response to write, or a shed to report.
enum RouteOutcome {
    Response(CachedResponse),
    Shed(ShedReason),
}

/// A fully serialized HTTP response: the keep-alive rendering (status
/// line + headers + body, no `Connection` header — HTTP/1.1 defaults
/// to persistent) plus the offset where the body starts, so the
/// closing variant can reuse the body bytes without re-rendering.
#[derive(Clone)]
pub struct CachedResponse {
    status: u16,
    bytes: Arc<[u8]>,
    body_start: usize,
    /// The `Content-Type` this response was framed with — the closing
    /// variant re-frames the head and must preserve it.
    content_type: &'static str,
    /// Strong validator (quoted FNV-1a of the body), present only on
    /// cached-tier `200`s — the revalidation (`If-None-Match` → `304`)
    /// surface.
    etag: Option<Arc<str>>,
    /// Extra pre-rendered header lines (`Name: value\r\n`), carried so
    /// the closing variant re-emits them — the replica's
    /// `Frost-Primary` redirect hint rides here.
    extra: Option<Arc<str>>,
}

impl CachedResponse {
    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The serialized keep-alive response.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The serialized keep-alive response, by shared handle (the
    /// event loop queues it for writing without a copy).
    pub(crate) fn shared_bytes(&self) -> Arc<[u8]> {
        Arc::clone(&self.bytes)
    }

    /// The response body (shared with [`bytes`](Self::bytes)).
    pub fn body(&self) -> &[u8] {
        &self.bytes[self.body_start..]
    }

    /// The entity tag, when this response carries one.
    pub fn etag(&self) -> Option<&str> {
        self.etag.as_deref()
    }
}

impl CacheWeight for CachedResponse {
    fn weight(&self) -> usize {
        self.bytes.len()
    }
}

/// The shared server state: the store behind a [`RwLock`], the two
/// result-cache tiers in front of it, and the (optional) durable
/// writer behind one writer lock.
pub struct ServerState {
    store: RwLock<BenchmarkStore>,
    cache: ShardedCache,
    responses: ShardedCache<CachedResponse>,
    /// The write path serializes here. `Some` = durable (WAL-backed);
    /// `None` = volatile in-memory writes (CSV-dir store). Lock order:
    /// writer lock first, then the store lock — never the reverse.
    writer: parking_lot::Mutex<Option<DurableStore>>,
    /// Set during graceful shutdown: responses advertise
    /// `Connection: close` and queued-but-unstarted connections are
    /// answered with a clean `503` instead of being served.
    draining: AtomicBool,
    json_renders: AtomicU64,
    connections: AtomicU64,
    overload: OverloadStats,
    /// The shed-window clock's epoch (server start).
    started: Instant,
    /// Traces, latency histograms, and the `/metrics` registry (wired
    /// to the durable writer's WAL histograms when one exists).
    telemetry: Arc<Telemetry>,
    /// Replication role, positions, long-poll wakeup and semi-sync ack
    /// condvars. Present on every server (a primary with no replicas
    /// just never sees a poll).
    hub: Arc<ReplicationHub>,
}

impl ServerState {
    /// Wraps a loaded store (volatile writes: accepted, in-memory
    /// only).
    pub fn new(store: BenchmarkStore) -> Self {
        Self::build(store, None)
    }

    /// Wraps a store recovered by [`DurableStore::open`]: writes
    /// append to its WAL before they apply.
    pub fn with_durable(store: BenchmarkStore, durable: DurableStore) -> Self {
        Self::build(store, Some(durable))
    }

    fn build(store: BenchmarkStore, durable: Option<DurableStore>) -> Self {
        let wal_stats = durable.as_ref().map(|d| d.wal_stats()).unwrap_or_default();
        let hub = Arc::new(match durable.as_ref() {
            Some(d) => ReplicationHub::new(d.snapshot_id(), d.wal_len(), d.wal_records()),
            None => ReplicationHub::new(SnapshotId { len: 0, crc: 0 }, 0, 0),
        });
        Self {
            store: RwLock::new(store),
            cache: ShardedCache::new(CACHE_SHARDS),
            responses: ShardedCache::new(CACHE_SHARDS),
            writer: parking_lot::Mutex::new(durable),
            draining: AtomicBool::new(false),
            json_renders: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            overload: OverloadStats::default(),
            started: Instant::now(),
            telemetry: Arc::new(Telemetry::new(wal_stats)),
            hub,
        }
    }

    /// The telemetry registry (traces, histograms, `/metrics`).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// The replication hub (role, positions, lag, ack condvars).
    pub fn hub(&self) -> &Arc<ReplicationHub> {
        &self.hub
    }

    /// Whether writes are WAL-backed.
    pub fn is_durable(&self) -> bool {
        self.writer.lock().is_some()
    }

    /// Flips the server into drain mode (used by graceful shutdown):
    /// every response from here on advertises `Connection: close`, and
    /// workers answer queued-but-unstarted connections with a `503`
    /// instead of serving them.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether the server is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Fsyncs any unsynced WAL frames (the shutdown path; a no-op for
    /// volatile stores).
    pub fn sync_wal(&self) -> Result<(), String> {
        match self.writer.lock().as_mut() {
            Some(d) => d.sync().map_err(|e| e.to_string()),
            None => Ok(()),
        }
    }

    /// Runs a read-only closure against the store (shared lock).
    pub fn with_store<R>(&self, f: impl FnOnce(&BenchmarkStore) -> R) -> R {
        f(&self.store.read())
    }

    /// Runs a mutating closure against the store (exclusive lock) and
    /// bumps the cache generation afterwards — the invalidation rule:
    /// *every* derived artifact, in both tiers (rendered bodies and
    /// serialized response bytes), is stamped with the store
    /// generation it was computed under, and a mutation makes all
    /// older stamps stale at once.
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut BenchmarkStore) -> R) -> R {
        let out = f(&mut self.store.write());
        self.cache.invalidate();
        self.responses.invalidate();
        out
    }

    /// Bumps the named scopes in both cache tiers — the fine-grained
    /// counterpart of the global bump in
    /// [`with_store_mut`](Self::with_store_mut).
    fn invalidate_write_scopes(&self, scopes: &[&str]) {
        self.cache.invalidate_scopes(scopes.iter().copied());
        self.responses.invalidate_scopes(scopes.iter().copied());
    }

    /// The durable import flow: validate + build the import-time
    /// artifacts under a *read* lock, make the op durable, then take
    /// the write lock only for the cheap insert. Failing validation or
    /// a failing WAL append leaves both memory and disk untouched.
    fn import_experiment(
        &self,
        dataset: &str,
        name: &str,
        csv: &str,
    ) -> Result<api::Response, (u16, String)> {
        let mut writer = self.writer.lock();
        let stored = {
            let store = self.store.read();
            let experiment =
                api::parse_experiment_csv(&store, dataset, name, csv).map_err(store_error)?;
            let n = store.dataset(dataset).map_err(store_error)?.len();
            let clustering = Clustering::from_experiment(n, &experiment);
            let pair_set = experiment.roaring_pair_set();
            StoredExperiment {
                dataset: dataset.to_string(),
                experiment,
                clustering,
                pair_set,
                kpis: None,
            }
        };
        let pairs = stored.experiment.len();
        if let Some(d) = writer.as_mut() {
            let op = WalOp::add_experiment(dataset, &stored.experiment, None);
            d.append(&op).map_err(durable_error)?;
        }
        self.store
            .write()
            .insert_stored(stored)
            .map_err(store_error)?;
        self.invalidate_write_scopes(&[&format!("exp:{name}"), "sys:experiments"]);
        if let Some(d) = writer.as_ref() {
            self.hub
                .publish(d.snapshot_id(), d.wal_len(), d.wal_records());
        }
        Ok(api::Response::Imported {
            experiment: name.to_string(),
            pairs,
        })
    }

    /// The durable delete flow (same sequencing as import).
    fn delete_experiment(&self, name: &str) -> Result<api::Response, (u16, String)> {
        let mut writer = self.writer.lock();
        self.store
            .read()
            .experiment(name)
            .map(|_| ())
            .map_err(store_error)?;
        if let Some(d) = writer.as_mut() {
            let op = WalOp::DeleteExperiment {
                name: name.to_string(),
            };
            d.append(&op).map_err(durable_error)?;
        }
        self.store
            .write()
            .remove_experiment(name)
            .map_err(store_error)?;
        self.invalidate_write_scopes(&[&format!("exp:{name}"), "sys:experiments"]);
        if let Some(d) = writer.as_ref() {
            self.hub
                .publish(d.snapshot_id(), d.wal_len(), d.wal_records());
        }
        Ok(api::Response::Deleted {
            experiment: name.to_string(),
        })
    }

    /// Compacts WAL + snapshot under live traffic: the new `FROSTB`
    /// is written and atomically renamed while readers keep serving
    /// (only the writer lock and a read lock are held).
    fn save_snapshot(&self) -> Result<api::Response, (u16, String)> {
        let mut writer = self.writer.lock();
        let Some(d) = writer.as_mut() else {
            return Err((
                400,
                error_body(
                    "store has no snapshot backing (started from CSV); \
                     start frostd on a FROSTB file to enable saves",
                ),
            ));
        };
        let store = self.store.read();
        d.compact(&store).map_err(durable_error)?;
        self.hub
            .publish(d.snapshot_id(), d.wal_len(), d.wal_records());
        Ok(api::Response::Saved {
            datasets: store.dataset_names().len(),
            experiments: store.experiment_names(None).len(),
        })
    }

    /// This node's durable replication position: snapshot epoch plus
    /// WAL length — the coordinate the replica polls `?from=` with.
    /// Volatile stores report a zero position.
    pub fn replication_position(&self) -> (SnapshotId, u64) {
        match self.writer.lock().as_ref() {
            Some(d) => (d.snapshot_id(), d.wal_len()),
            None => (SnapshotId { len: 0, crc: 0 }, 0),
        }
    }

    /// Applies one replicated WAL record through the exact path
    /// single-node recovery takes: append to the local WAL (re-encoded
    /// bytes are identical — the op codec is deterministic), apply to
    /// the in-memory store, invalidate the touched cache scopes, and
    /// publish the new position.
    pub fn apply_replicated(&self, op: &WalOp) -> std::io::Result<()> {
        let mut writer = self.writer.lock();
        let Some(d) = writer.as_mut() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replica has no durable store",
            ));
        };
        d.append(op)
            .map_err(|e| std::io::Error::other(format!("replicated append failed: {e}")))?;
        let name = match op {
            WalOp::AddExperiment { name, .. } | WalOp::DeleteExperiment { name } => name.clone(),
        };
        {
            let mut store = self.store.write();
            op.apply(&mut store)
                .map_err(|e| std::io::Error::other(format!("replicated apply failed: {e}")))?;
        }
        self.invalidate_write_scopes(&[&format!("exp:{name}"), "sys:experiments"]);
        self.hub
            .publish(d.snapshot_id(), d.wal_len(), d.wal_records());
        Ok(())
    }

    /// Swaps in a snapshot fetched from the primary (re-bootstrap after
    /// the primary compacted): atomically replaces the snapshot file,
    /// reopens the durable store over it (the old WAL is discarded as
    /// stale by the normal recovery rule), replaces the in-memory
    /// store, and invalidates every cache entry.
    pub fn install_snapshot(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut writer = self.writer.lock();
        let Some(current) = writer.as_ref() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replica has no durable store",
            ));
        };
        let path = current.snapshot_path().to_path_buf();
        let policy = current.policy();
        let stats = current.wal_stats();
        let tmp = path.with_extension("rebootstrap.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        let (store, mut durable, _report) = DurableStore::open(&path, policy)
            .map_err(|e| std::io::Error::other(format!("reopen after bootstrap failed: {e}")))?;
        durable.set_wal_stats(stats);
        {
            let mut guard = self.store.write();
            *guard = store;
        }
        self.hub.publish(
            durable.snapshot_id(),
            durable.wal_len(),
            durable.wal_records(),
        );
        *writer = Some(durable);
        self.cache.invalidate();
        self.responses.invalidate();
        Ok(())
    }

    /// `POST /replication/promote`: flips a replica into a primary.
    /// The role flips *first* (the apply loop and write path observe it
    /// before any state change), then the tail is sealed — fsync, then
    /// compact, so the promoted node starts its primary life on a
    /// fresh snapshot epoch and replicas of the old primary that
    /// re-point here re-bootstrap cleanly. Idempotent on a primary.
    pub fn promote(&self) -> Result<String, (u16, String)> {
        let already_primary = self.hub.is_primary();
        if !already_primary {
            self.hub.set_role(Role::Primary);
            self.hub.set_primary_hint(None);
            let mut writer = self.writer.lock();
            if let Some(d) = writer.as_mut() {
                d.sync().map_err(durable_error)?;
                let store = self.store.read();
                d.compact(&store).map_err(durable_error)?;
                drop(store);
                self.hub
                    .publish(d.snapshot_id(), d.wal_len(), d.wal_records());
            }
        }
        Ok(serde_json::to_string(&Value::object([
            ("promoted".to_string(), Value::from(!already_primary)),
            ("role".to_string(), Value::from("primary")),
        ])))
    }

    /// The first-tier result cache (rendered JSON bodies).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The second-tier cache (serialized HTTP response bytes).
    pub fn response_cache(&self) -> &ShardedCache<CachedResponse> {
        &self.responses
    }

    /// JSON serializations performed since start-up. A cache-served
    /// request performs none — the render-counter tests pin that.
    pub fn json_renders(&self) -> u64 {
        self.json_renders.load(Ordering::Relaxed)
    }

    /// Connections accepted since start-up.
    pub fn connections_accepted(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// The overload counters `/stats` and `/readyz` report.
    pub fn overload(&self) -> &OverloadStats {
        &self.overload
    }

    /// Seconds since start-up: the shed-window clock.
    fn clock_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    pub(crate) fn note_admitted(&self) {
        self.overload.note_admitted(self.clock_secs());
    }

    pub(crate) fn note_shed(&self, reason: ShedReason) {
        self.overload.note_shed(reason, self.clock_secs());
    }

    /// Whether the WAL writer refused further appends after an earlier
    /// disk failure (see `DurableStore::poisoned`). Volatile stores
    /// report `false`.
    pub fn wal_poisoned(&self) -> bool {
        self.writer.lock().as_ref().is_some_and(|d| d.poisoned())
    }

    /// The shed rate over the trailing window, or `0.0` while the
    /// window holds too few events to be meaningful.
    pub fn recent_shed_rate(&self) -> f64 {
        let (shed, total) = self.overload.window_counts(self.clock_secs());
        if total < READY_MIN_WINDOW_EVENTS {
            0.0
        } else {
            shed as f64 / total as f64
        }
    }

    /// Splits a total byte budget evenly across both cache tiers
    /// (rendered bodies + serialized responses); eviction is
    /// stale-first, then least-recently-used.
    pub fn set_cache_budget(&self, total_bytes: usize) {
        let half = (total_bytes / 2).max(1);
        self.cache.set_budget(half);
        self.responses.set_budget(half);
    }

    fn rendered(&self, response: &api::Response) -> String {
        self.json_renders.fetch_add(1, Ordering::Relaxed);
        serde_json::to_string(&response_to_json(response))
    }
}

/// A running server: its bound address, shared state, and shutdown
/// control.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    /// The event loops' mailboxes — shutdown signals go through them.
    loops: Arc<[Arc<event_loop::LoopShared>]>,
    loop_threads: Vec<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// The replica apply loop (`--replica-of`); observes the shared
    /// shutdown flag.
    replica_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound socket address (resolves ephemeral port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (store + caches).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drops every connection, and joins all server
    /// threads (the drop glue does the work, so forgetting to call
    /// this leaks nothing).
    pub fn shutdown(self) {}

    /// The graceful variant: stops accepting, lets dispatched and
    /// mid-write requests finish, closes idle connections, then joins
    /// everything. The ordering matters: the accept thread stops
    /// first, then the event loops drain (their in-flight requests
    /// need the still-live workers), and the workers exit once the
    /// last loop drops its queue sender.
    pub fn graceful_shutdown(mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.state.begin_drain();
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for shared in self.loops.iter() {
            shared.begin_drain();
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.replica_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_none() && self.loop_threads.is_empty() {
            return; // graceful_shutdown already ran
        }
        self.shutdown.store(true, Ordering::Release);
        // Hard stop: every loop drops its connections immediately (a
        // worker mid-request finishes, but its completion lands in a
        // dead mailbox).
        for shared in self.loops.iter() {
            shared.kill();
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.replica_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves requests
/// on `workers` pool threads with default connection limits. See
/// [`serve_with`] for the tunable form.
pub fn serve(addr: &str, state: Arc<ServerState>, workers: usize) -> std::io::Result<ServerHandle> {
    serve_with(
        addr,
        state,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
}

/// Binds `addr` and serves keep-alive connections until the handle is
/// shut down or dropped: `options.event_threads` readiness loops own
/// every socket, `options.workers` pool threads evaluate the complete
/// requests the loops dispatch.
pub fn serve_with(
    addr: &str,
    state: Arc<ServerState>,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    if options.replica_of.is_some() && !state.is_durable() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "--replica-of requires a durable (FROSTB) store: a volatile \
             store has no WAL to replicate into",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    if let Some(budget) = options.cache_budget {
        state.set_cache_budget(budget);
    }
    let replica_thread = match options.replica_of.clone() {
        Some(primary) => {
            // Role flips before any request can be served, so the
            // write path never races a not-yet-replica window.
            state.hub.set_role(Role::Replica);
            state.hub.set_primary_hint(Some(primary.clone()));
            let replica_state = Arc::clone(&state);
            let replica_shutdown = Arc::clone(&shutdown);
            Some(std::thread::spawn(move || {
                replication::run_replica(&replica_state, &primary, &replica_shutdown);
            }))
        }
        None => None,
    };
    state
        .telemetry
        .configure(options.telemetry, options.slow_request, options.trace_ring);
    // The bounded admission queue now carries *complete parsed
    // requests* (not connections): the event loops `try_send` each
    // request they finish assembling, stamped with its absolute
    // deadline. A full queue is the cheap-reject signal — and the
    // accept thread pre-screens new connections against the queue
    // depth so a flood is answered without ever entering a loop.
    let (tx, rx) = mpsc::sync_channel::<event_loop::Work>(options.max_queued.max(1));
    let rx = Arc::new(Mutex::new(rx));
    let gates = Arc::new(ClassGates::for_options(&options));
    let workers = options.workers.max(1);
    let event_threads = options.event_threads.max(1);
    let mut loop_mailboxes = Vec::with_capacity(event_threads);
    for _ in 0..event_threads {
        loop_mailboxes.push(Arc::new(event_loop::LoopShared::new()?));
    }
    let loops: Arc<[Arc<event_loop::LoopShared>]> = loop_mailboxes.into();
    let mut worker_threads = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let options = options.clone();
        let gates = Arc::clone(&gates);
        let loops = Arc::clone(&loops);
        worker_threads.push(std::thread::spawn(move || loop {
            // Holding the lock only for the recv keeps the pool fair.
            let next = rx.lock().expect("worker queue lock").recv();
            match next {
                Ok(mut work) => {
                    state.overload.queue_dequeued();
                    let done = execute(&work, &state, &options, &gates);
                    loops[work.loop_id].push_completion(event_loop::Completion {
                        token: work.token,
                        generation: work.generation,
                        done,
                        trace: work.trace.take(),
                    });
                }
                Err(_) => break, // every event loop exited → drain done
            }
        }));
    }
    let mut loop_threads = Vec::with_capacity(event_threads);
    for (loop_id, shared) in loops.iter().enumerate() {
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        let state = Arc::clone(&state);
        let options = options.clone();
        loop_threads.push(std::thread::spawn(move || {
            event_loop::run(loop_id, shared, tx, state, options);
        }));
    }
    // Only the loops hold senders now: the last exiting loop is the
    // workers' stop signal.
    drop(tx);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_state = Arc::clone(&state);
    let accept_loops = Arc::clone(&loops);
    let max_queued = options.max_queued.max(1) as u64;
    let accept_thread = std::thread::spawn(move || {
        let mut next_loop = 0usize;
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::Acquire) {
                break;
            }
            if let Ok(mut stream) = stream {
                accept_state.connections.fetch_add(1, Ordering::Relaxed);
                if accept_state.is_draining() {
                    // Connections racing shutdown must not land in a
                    // loop that may already have drained away.
                    accept_state.note_shed(ShedReason::Draining);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    write_shed_unread(&mut stream, ShedReason::Draining);
                    continue;
                }
                if accept_state.overload.queue_depth() >= max_queued {
                    // The cheap reject: the accept thread answers the
                    // canned 503 itself — no parsing, no evaluation,
                    // no worker time — and moves on.
                    accept_state.note_shed(ShedReason::QueueFull);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    write_shed_unread(&mut stream, ShedReason::QueueFull);
                    continue;
                }
                accept_loops[next_loop % accept_loops.len()].adopt(stream, Instant::now());
                next_loop = next_loop.wrapping_add(1);
            }
        }
    });
    Ok(ServerHandle {
        addr: local,
        state,
        shutdown,
        loops,
        loop_threads,
        worker_threads,
        accept_thread: Some(accept_thread),
        replica_thread,
    })
}

/// Set by the SIGINT/SIGTERM handler; polled by [`run_daemon`].
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn note_shutdown_signal(_signum: i32) {
    // Only an atomic store — everything else is async-signal-unsafe.
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers via the raw `signal(2)` C
/// function (declared directly — the workspace vendors no libc crate).
#[cfg(unix)]
fn install_shutdown_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = note_shutdown_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handlers() {}

/// The shared `frostd` / `frost serve` bootstrap: loads a store from
/// either on-disk representation, binds `addr:port`, prints the
/// scrapeable `frostd listening on http://…` line (the CI golden gate
/// greps it) and serves until SIGTERM/SIGINT, then drains gracefully:
/// stop accepting, let in-flight requests finish, fsync the WAL, exit.
///
/// A `FROSTB` snapshot path runs **durable** — the WAL at
/// `<path>.wal` is replayed over the snapshot on boot (torn tails
/// truncated with a warning, mid-log corruption refused) and every
/// write is logged with the given fsync policy before it applies. A
/// CSV directory runs volatile: writes are accepted in memory only.
pub fn run_daemon(
    store_path: &str,
    addr: &str,
    port: u16,
    options: ServeOptions,
    fsync: frost_storage::FsyncPolicy,
) -> Result<(), String> {
    if let Some(primary) = options.replica_of.as_deref() {
        // A replica may be pointed at a store file that does not exist
        // yet: bootstrap it from the primary's snapshot endpoint.
        if !std::path::Path::new(store_path).exists() {
            println!("frostd: replica bootstrap: fetching snapshot from {primary}");
            replication::bootstrap_snapshot(
                primary,
                std::path::Path::new(store_path),
                Duration::from_secs(30),
            )
            .map_err(|e| format!("replica bootstrap from {primary} failed: {e}"))?;
            println!("frostd: replica bootstrap complete");
        }
        if !frost_storage::snapshot::is_snapshot(store_path) {
            return Err(format!(
                "--replica-of requires a FROSTB snapshot store, but {store_path:?} is not one"
            ));
        }
    }
    let state = if frost_storage::snapshot::is_snapshot(store_path) {
        let (store, durable, report) = DurableStore::open(store_path, fsync)
            .map_err(|e| format!("cannot recover store {store_path:?}: {e}"))?;
        if let Some(bytes) = report.truncated_tail {
            eprintln!(
                "frostd: WARNING: truncated {bytes} byte(s) of torn WAL tail \
                 (crash during an unsynced append)"
            );
        }
        if report.discarded_stale_wal {
            eprintln!(
                "frostd: WARNING: discarded a stale WAL from an interrupted \
                 compaction (its operations are in the snapshot)"
            );
        }
        if report.replayed > 0 {
            println!("frostd: replayed {} WAL operation(s)", report.replayed);
        }
        Arc::new(ServerState::with_durable(store, durable))
    } else {
        let store = frost_storage::persist::load_auto(store_path)
            .map_err(|e| format!("cannot load store {store_path:?}: {e}"))?;
        Arc::new(ServerState::new(store))
    };
    let (datasets, experiments) =
        state.with_store(|s| (s.dataset_names().len(), s.experiment_names(None).len()));
    let workers = options.workers;
    let durability = if state.is_durable() {
        "durable (WAL-backed)"
    } else {
        "volatile (in-memory writes)"
    };
    let role = match options.replica_of.as_deref() {
        Some(primary) => format!("replica of {primary}"),
        None => "primary".to_string(),
    };
    let handle = serve_with(&format!("{addr}:{port}"), Arc::clone(&state), options)
        .map_err(|e| format!("cannot bind {addr}:{port}: {e}"))?;
    println!("frostd listening on http://{}", handle.addr());
    println!("serving {datasets} dataset(s), {experiments} experiment(s) with {workers} worker(s)");
    println!("write path: {durability}");
    println!("role: {role}");
    install_shutdown_handlers();
    while !SHUTDOWN_REQUESTED.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("frostd: shutdown signal received, draining");
    handle.graceful_shutdown();
    state
        .sync_wal()
        .map_err(|e| format!("WAL fsync on shutdown failed: {e}"))?;
    println!("frostd: drained, WAL synced, exiting");
    Ok(())
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

/// A parsed request: the head plus (for `POST`/`DELETE`) its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path + query, undecoded).
    pub target: String,
    /// Whether the client wants the connection kept open afterwards:
    /// HTTP/1.1 unless `Connection: close`; HTTP/1.0 never (we do not
    /// implement 1.0-style opt-in keep-alive).
    pub keep_alive: bool,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// The `If-None-Match` header, verbatim, when present — drives
    /// `304 Not Modified` revalidation against cached entity tags.
    pub if_none_match: Option<String>,
    /// The request body (`content_length` bytes, filled in by
    /// [`RequestBuffer::next_request`] once fully buffered).
    pub body: Vec<u8>,
}

/// One step of incremental parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A complete request head was consumed from the buffer.
    Request(ParsedRequest),
    /// No complete head is buffered yet — read more bytes.
    Incomplete,
    /// The buffered bytes can never become a valid request; respond
    /// `400` (message attached) and close the connection.
    Error(&'static str),
}

/// An incremental HTTP/1.1 request-head buffer: bytes arrive in
/// arbitrary splits ([`extend`](Self::extend)), complete heads are
/// consumed in arrival order ([`next_request`](Self::next_request)) —
/// one read may carry a fraction of a head or several pipelined heads,
/// and both sides of that spectrum land in the same code path.
///
/// The scan for the head terminator resumes where the previous call
/// stopped, so re-parsing after a tiny read is `O(new bytes)`, not
/// `O(buffered bytes)`.
#[derive(Debug, Default)]
pub struct RequestBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset were consumed by earlier requests.
    consumed: usize,
    /// Terminator scan position (always ≥ `consumed`).
    scan: usize,
    /// Head terminator already located for a request whose body has
    /// not fully arrived yet, so re-parsing after each body read is
    /// `O(1)`, not a rescan of the head.
    head_end: Option<usize>,
    /// Arrival timestamps keyed by buffer offset: `(start, when)`
    /// records that bytes at `start..` (up to the next entry) arrived
    /// at `when`. A pipelined request's deadline clocks from the
    /// arrival of *its own first byte*, not from whenever its
    /// predecessor's response finished writing.
    arrivals: std::collections::VecDeque<(usize, Instant)>,
    /// Arrival of the first byte of the most recently consumed head.
    last_arrival: Option<Instant>,
}

impl RequestBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.extend_at(bytes, Instant::now());
    }

    /// [`extend`](Self::extend) with an explicit arrival timestamp for
    /// the appended bytes.
    pub fn extend_at(&mut self, bytes: &[u8], arrived: Instant) {
        self.prune_arrivals();
        // Reclaim consumed space before growing: a long-lived
        // keep-alive connection must not accumulate every head it ever
        // parsed.
        if self.consumed > 0 && (self.consumed == self.buf.len() || self.consumed >= 4096) {
            self.buf.drain(..self.consumed);
            self.scan -= self.consumed;
            if let Some(e) = &mut self.head_end {
                *e -= self.consumed;
            }
            for (start, _) in &mut self.arrivals {
                *start = start.saturating_sub(self.consumed);
            }
            self.consumed = 0;
        }
        if !bytes.is_empty() {
            self.arrivals.push_back((self.buf.len(), arrived));
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Drops arrival entries wholly behind the consumed frontier,
    /// keeping the latest such entry as the floor for offsets between
    /// it and the next one.
    fn prune_arrivals(&mut self) {
        while self.arrivals.len() >= 2 && self.arrivals[1].0 <= self.consumed {
            self.arrivals.pop_front();
        }
    }

    /// Arrival time of the read that delivered the byte at `offset`.
    fn arrival_at(&self, offset: usize) -> Option<Instant> {
        self.arrivals
            .iter()
            .rev()
            .find(|(start, _)| *start <= offset)
            .map(|&(_, at)| at)
    }

    /// When the first *unconsumed* byte arrived (`None` when nothing
    /// is pending) — the deadline clock for a buffered pipelined head.
    pub fn pending_arrival(&self) -> Option<Instant> {
        if self.pending() == 0 {
            return None;
        }
        self.arrival_at(self.consumed)
    }

    /// When the first byte of the most recently consumed request
    /// arrived — its deadline clock.
    pub fn last_arrival(&self) -> Option<Instant> {
        self.last_arrival
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Tries to consume the next complete request (head, plus its body
    /// when a `Content-Length` is declared).
    pub fn next_request(&mut self) -> Parsed {
        let head_start = self.consumed;
        let end = match self.head_end {
            Some(e) => e,
            None => match self.find_head_end() {
                Some(e) => e,
                None => {
                    if self.pending() > MAX_REQUEST_BYTES {
                        return Parsed::Error("request head too large");
                    }
                    return Parsed::Incomplete;
                }
            },
        };
        if end - self.consumed > MAX_REQUEST_BYTES {
            return Parsed::Error("request head too large");
        }
        let head = &self.buf[self.consumed..end];
        let parsed = parse_head(head);
        if let Parsed::Request(mut request) = parsed {
            if request.content_length > MAX_BODY_BYTES {
                return Parsed::Error("request body too large");
            }
            let body_end = end + request.content_length;
            if self.buf.len() < body_end {
                // Remember the located head so the next call (after
                // more body bytes arrive) skips the terminator scan.
                self.head_end = Some(end);
                return Parsed::Incomplete;
            }
            request.body = self.buf[end..body_end].to_vec();
            self.head_end = None;
            self.last_arrival = self.arrival_at(head_start);
            self.consumed = body_end;
            self.scan = body_end;
            return Parsed::Request(request);
        }
        self.head_end = None;
        self.consumed = end;
        self.scan = end;
        parsed
    }

    /// Finds the exclusive end offset of the first complete head
    /// (`\r\n\r\n` or bare `\n\n`), resuming from the previous scan.
    fn find_head_end(&mut self) -> Option<usize> {
        // Back up over a possibly split terminator at the old read
        // boundary, but never into a previously consumed head.
        let from = self.scan.saturating_sub(3).max(self.consumed);
        for i in from..self.buf.len() {
            if self.buf[i] != b'\n' {
                continue;
            }
            if i > self.consumed && self.buf[i - 1] == b'\n' {
                return Some(i + 1);
            }
            if i >= self.consumed + 3
                && self.buf[i - 1] == b'\r'
                && self.buf[i - 2] == b'\n'
                && self.buf[i - 3] == b'\r'
            {
                return Some(i + 1);
            }
        }
        self.scan = self.buf.len();
        None
    }
}

/// Parses one complete request head (request line + headers, including
/// the trailing blank line).
fn parse_head(head: &[u8]) -> Parsed {
    let text = String::from_utf8_lossy(head);
    let mut lines = text.lines();
    let Some(request_line) = lines.next().filter(|l| !l.trim().is_empty()) else {
        return Parsed::Error("empty request line");
    };
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Parsed::Error("malformed request line");
    };
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Parsed::Error("unsupported protocol version");
    }
    let http10 = version == "HTTP/1.0";
    let mut keep_alive = !http10;
    let mut content_length = 0usize;
    let mut if_none_match = None;
    for line in lines {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Error("malformed header line");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                // Token list; "close" wins over anything else.
                let tokens = value.split(',').map(|t| t.trim().to_ascii_lowercase());
                for token in tokens {
                    match token.as_str() {
                        "close" => keep_alive = false,
                        // 1.0-style opt-in keep-alive is not
                        // implemented: the response would need an
                        // explicit Connection: keep-alive echo the
                        // cached rendering does not carry.
                        "keep-alive" if http10 => keep_alive = false,
                        _ => {}
                    }
                }
            }
            "content-length" => match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return Parsed::Error("bad Content-Length"),
            },
            "transfer-encoding" => {
                return Parsed::Error("chunked request bodies are not supported");
            }
            "if-none-match" => if_none_match = Some(value.to_string()),
            _ => {}
        }
    }
    // Bodies belong to the write methods; a GET carrying one is
    // either a confused client or request smuggling — refuse it.
    if method == "GET" && content_length > 0 {
        return Parsed::Error("request bodies are not supported on GET");
    }
    Parsed::Request(ParsedRequest {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
        content_length,
        if_none_match,
        body: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Request execution (worker side)
// ---------------------------------------------------------------------

/// Evaluates one dispatched request on a pool worker. Everything
/// socket-shaped already happened in the event loop; this is pure
/// request → verdict.
fn execute(
    work: &event_loop::Work,
    state: &ServerState,
    options: &ServeOptions,
    gates: &ClassGates,
) -> event_loop::Done {
    let trace = work.trace.as_deref();
    // Graceful shutdown: requests still queued were never served —
    // a clean 503 instead of a silent drop.
    if state.is_draining() {
        state.note_shed(ShedReason::Draining);
        if let Some(trace) = trace {
            trace.set_status(503);
        }
        return event_loop::Done::Shed(ShedReason::Draining);
    }
    // The admission contract, re-checked after queue wait: a request
    // past its deadline is never evaluated.
    if work.deadline.is_some_and(|d| Instant::now() > d) {
        state.note_shed(ShedReason::Deadline);
        if let Some(trace) = trace {
            trace.set_status(503);
        }
        return event_loop::Done::Shed(ShedReason::Deadline);
    }
    let ctx = RequestContext {
        options,
        gates,
        deadline: work.deadline,
        trace,
    };
    let request = &work.request;
    // Panic isolation: a panicking handler becomes a 500 (written by
    // the event loop) and the worker survives to serve the next
    // request. The store's own locks are parking_lot (no poisoning),
    // so unwinding cannot wedge them.
    let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if options.debug_panic && request.target == "/debug/panic" {
            panic!("debug panic requested");
        }
        route(request, state, &ctx)
    }));
    match routed {
        Ok(RouteOutcome::Response(payload)) => {
            if work.deadline.is_some_and(|d| Instant::now() > d) {
                state.overload.note_deadline_late();
            }
            let payload = revalidate(payload, request);
            if let Some(trace) = trace {
                trace.stamp(Stage::Serialized);
                trace.set_status(payload.status);
            }
            event_loop::Done::Response(payload)
        }
        Ok(RouteOutcome::Shed(reason)) => {
            state.note_shed(reason);
            if let Some(trace) = trace {
                trace.set_status(503);
            }
            event_loop::Done::Shed(reason)
        }
        Err(_) => {
            if let Some(trace) = trace {
                trace.set_status(500);
            }
            event_loop::Done::Panicked
        }
    }
}

/// `ETag` revalidation on the cached-bytes tier: when a `200` carries
/// an entity tag and the request's `If-None-Match` matches it, the
/// body is replaced by a `304 Not Modified` — the client's cached copy
/// is current, so only headers go over the wire.
fn revalidate(payload: CachedResponse, request: &ParsedRequest) -> CachedResponse {
    let (Some(etag), Some(candidates)) =
        (payload.etag.as_deref(), request.if_none_match.as_deref())
    else {
        return payload;
    };
    if payload.status == 200 && etag_matches(candidates, etag) {
        not_modified(etag)
    } else {
        payload
    }
}

/// Whether an `If-None-Match` header value matches `etag`: a
/// comma-separated list of (possibly `W/`-prefixed) quoted tags, or
/// `*`. Weak comparison — revalidation only decides whether bytes
/// must be resent.
fn etag_matches(candidates: &str, etag: &str) -> bool {
    candidates.split(',').any(|candidate| {
        let candidate = candidate.trim();
        candidate == "*" || candidate.strip_prefix("W/").unwrap_or(candidate) == etag
    })
}

/// Writes the canned shed response for `reason`: a `503` with
/// `Retry-After` and `Connection: close`, pre-serialized so the
/// reject path allocates and formats nothing.
fn write_shed(stream: &mut TcpStream, reason: ShedReason) {
    let _ = stream.write_all(shed_response_bytes(reason));
    let _ = stream.flush();
}

/// [`write_shed`] for the sites that answer *before* the request
/// bytes were read (queue-full and draining rejects, queue-wait and
/// mid-head deadline sheds). Closing a socket with unread data in its
/// receive buffer makes the kernel send RST, which can destroy the
/// in-flight `503` before the client reads it — so after writing,
/// half-close the send side and drain until the client closes
/// (bounded: a well-behaved client reads the response and closes
/// within a round trip; a trickler costs at most ~200 ms).
fn write_shed_unread(stream: &mut TcpStream, reason: ShedReason) {
    write_shed(stream, reason);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(150);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(_) => {}
            // A read timeout just means the client sent nothing this
            // tick; the drain window is the *deadline*, not one read.
            // Breaking here cut the documented ~150 ms drain to the
            // 50 ms read timeout.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

pub(crate) fn shed_response_bytes(reason: ShedReason) -> &'static [u8] {
    static PAYLOADS: std::sync::OnceLock<[Vec<u8>; 4]> = std::sync::OnceLock::new();
    let idx = match reason {
        ShedReason::QueueFull => 0,
        ShedReason::Deadline => 1,
        ShedReason::ClassSaturated => 2,
        ShedReason::Draining => 3,
    };
    &PAYLOADS.get_or_init(|| {
        [
            ShedReason::QueueFull,
            ShedReason::Deadline,
            ShedReason::ClassSaturated,
            ShedReason::Draining,
        ]
        .map(|r| {
            let body = error_body(r.message());
            format!(
                "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nRetry-After: {RETRY_AFTER_SECS}\r\n\
                 Connection: close\r\n\r\n{body}",
                body.len()
            )
            .into_bytes()
        })
    })[idx]
}

/// The default response content type (every JSON endpoint).
const CONTENT_TYPE_JSON: &str = "application/json";

/// The Prometheus text exposition format version `/metrics` serves.
const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";

/// The replication stream content type (`/replication/wal` and
/// `/replication/snapshot` bodies are binary: preamble + raw bytes).
const CONTENT_TYPE_BINARY: &str = "application/octet-stream";

/// The one response-head rendering both framings share; the closing
/// variant only adds the `Connection: close` header (HTTP/1.1
/// defaults to persistent, so the keep-alive form carries none).
fn response_head(
    status: u16,
    content_length: usize,
    close: bool,
    etag: Option<&str>,
    content_type: &str,
    extra: Option<&str>,
) -> String {
    let reason = match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if close { "Connection: close\r\n" } else { "" };
    let etag = match etag {
        Some(tag) => format!("ETag: {tag}\r\n"),
        None => String::new(),
    };
    let extra = extra.unwrap_or("");
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {content_length}\r\n{etag}{extra}{connection}\r\n"
    )
}

/// Serializes an untagged response in its keep-alive form.
pub(crate) fn encode_response(status: u16, body: Vec<u8>) -> CachedResponse {
    encode_with_etag(status, body, None)
}

/// [`encode_response`] with a non-JSON content type (the Prometheus
/// exposition).
fn encode_text(status: u16, body: Vec<u8>, content_type: &'static str) -> CachedResponse {
    encode_full(status, body, None, content_type)
}

/// Serializes a cacheable response with a strong entity tag derived
/// from the body, enabling `If-None-Match` revalidation on the
/// response-byte cache tier.
fn encode_cached(status: u16, body: Vec<u8>) -> CachedResponse {
    let etag: Arc<str> = format!("\"{:016x}\"", fnv1a64(&body)).into();
    encode_with_etag(status, body, Some(etag))
}

fn encode_with_etag(status: u16, body: Vec<u8>, etag: Option<Arc<str>>) -> CachedResponse {
    encode_full(status, body, etag, CONTENT_TYPE_JSON)
}

fn encode_full(
    status: u16,
    body: Vec<u8>,
    etag: Option<Arc<str>>,
    content_type: &'static str,
) -> CachedResponse {
    encode_extra(status, body, etag, content_type, None)
}

/// [`encode_full`] carrying extra pre-rendered header lines (the
/// replica write rejection's `Frost-Primary` hint).
fn encode_extra(
    status: u16,
    body: Vec<u8>,
    etag: Option<Arc<str>>,
    content_type: &'static str,
    extra: Option<Arc<str>>,
) -> CachedResponse {
    let head = response_head(
        status,
        body.len(),
        false,
        etag.as_deref(),
        content_type,
        extra.as_deref(),
    );
    let mut bytes = Vec::with_capacity(head.len() + body.len());
    bytes.extend_from_slice(head.as_bytes());
    let body_start = bytes.len();
    bytes.extend_from_slice(&body);
    CachedResponse {
        status,
        bytes: Arc::from(bytes),
        body_start,
        content_type,
        etag,
        extra,
    }
}

/// The canned `304 Not Modified` for a revalidated entity tag: an
/// empty body (`Content-Length: 0` keeps the in-repo client's framing
/// exact) echoing the tag it validated.
fn not_modified(etag: &str) -> CachedResponse {
    let etag: Arc<str> = etag.into();
    encode_with_etag(304, Vec::new(), Some(etag))
}

/// FNV-1a 64-bit — cheap, dependency-free, and stable across runs,
/// which is all an entity tag needs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Re-frames a response with `Connection: close`, sharing nothing —
/// used for the final response on a closing connection.
pub(crate) fn close_variant_bytes(payload: &CachedResponse) -> Vec<u8> {
    let body = payload.body();
    let head = response_head(
        payload.status,
        body.len(),
        true,
        payload.etag(),
        payload.content_type,
        payload.extra.as_deref(),
    );
    let mut bytes = Vec::with_capacity(head.len() + body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(body);
    bytes
}

pub(crate) fn error_body(message: &str) -> String {
    serde_json::to_string(&Value::object([(
        "error".to_string(),
        Value::from(message),
    )]))
}

/// Splits a request target into path + decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), params)
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

struct Params(Vec<(String, String)>);

impl Params {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, (u16, String)> {
        self.get(key)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| (400, error_body(&format!("missing query parameter {key:?}"))))
    }
}

/// Routes one parsed request to its serialized response — or to a
/// shed decision.
///
/// Cacheable GET endpoints walk the tiers top-down: serialized
/// response bytes (tier 2, zero-allocation hit), then rendered body
/// (tier 1, re-frame only), then compute + render + fill both tiers —
/// every entry stamped with the invalidation scopes it read. Write
/// methods dispatch to the durable write flow and bump only the
/// scopes they touched.
///
/// Overload discipline: cache probes run *before* the class gate, so
/// a hot GET on a saturated compute class degrades to its cached body
/// instead of shedding; only the expensive part (store compute +
/// render, or a write) needs a permit, and a permit-holder re-checks
/// its deadline before starting — queue wait and gate wait never leak
/// into evaluation time.
fn route(request: &ParsedRequest, state: &ServerState, ctx: &RequestContext) -> RouteOutcome {
    let (path, params) = parse_target(&request.target);
    let params = Params(params);
    let class = classify(&request.method, &path);
    let _inflight = GaugeGuard::new(state.overload.gauge(class));
    if request.method != "GET" {
        if request.method == "POST" && path == "/replication/promote" {
            let _permit = match ctx.gate_for(class) {
                Ok(permit) => permit,
                Err(reason) => return RouteOutcome::Shed(reason),
            };
            let outcome = state.promote();
            if let Some(trace) = ctx.trace {
                trace.stamp(Stage::Evaluated);
            }
            return RouteOutcome::Response(match outcome {
                Ok(body) => encode_response(200, body.into()),
                Err((status, body)) => encode_response(status, body.into()),
            });
        }
        if !state.hub.is_primary() {
            // Replicas reject writes before any gate or permit: cheap,
            // and the Frost-Primary header tells the client where to
            // retry.
            let extra = state
                .hub
                .primary_hint()
                .map(|h| Arc::from(format!("Frost-Primary: {h}\r\n")));
            if let Some(trace) = ctx.trace {
                trace.set_status(503);
            }
            return RouteOutcome::Response(encode_extra(
                503,
                error_body("replica: writes must go to the primary").into(),
                None,
                CONTENT_TYPE_JSON,
                extra,
            ));
        }
        let _permit = match ctx.gate_for(class) {
            Ok(permit) => permit,
            Err(reason) => return RouteOutcome::Shed(reason),
        };
        if ctx.expired() {
            return RouteOutcome::Shed(ShedReason::Deadline);
        }
        let outcome = route_write(&request.method, &path, &params, &request.body, state);
        if let Some(trace) = ctx.trace {
            trace.stamp(Stage::Evaluated);
        }
        // Semi-sync replication: a WAL-appending write is acknowledged
        // only once a replica has proven it durable by polling past
        // its offset. On timeout the client sees 503, but the write IS
        // durable locally — the safe direction (a retry is idempotent
        // for imports of the same experiment).
        let appended_wal = matches!(
            (request.method.as_str(), path.as_str()),
            ("POST", "/experiments")
        ) || (request.method == "DELETE" && path.starts_with("/experiments/"));
        if outcome.is_ok() && appended_wal && ctx.options.sync_replication && state.is_durable() {
            let (snap, target, _) = state.hub.position();
            let mut wait = SYNC_ACK_TIMEOUT;
            if let Some(deadline) = ctx.deadline {
                wait = wait.min(deadline.saturating_duration_since(Instant::now()));
            }
            if !state.hub.wait_for_ack(snap, target, wait) {
                return RouteOutcome::Response(encode_response(
                    503,
                    error_body(
                        "write is durable on the primary but no replica \
                         acknowledged it in time",
                    )
                    .into(),
                ));
            }
        }
        return RouteOutcome::Response(match outcome {
            Ok(response) => encode_response(200, state.rendered(&response).into()),
            Err((status, body)) => encode_response(status, body.into()),
        });
    }
    if path == "/debug/sleep" && ctx.options.debug_sleep {
        return debug_sleep(&params, ctx);
    }
    RouteOutcome::Response(match build_request(&path, &params) {
        Ok(Routed::Api {
            request,
            cache_key,
            scopes,
        }) => {
            if let Some(key) = cache_key {
                let probed = state.responses.get(&key);
                if let Some(trace) = ctx.trace {
                    trace.stamp(Stage::CacheProbe);
                }
                if let Some(hit) = probed {
                    return RouteOutcome::Response(hit);
                }
                let scope_refs: Vec<&str> = scopes.iter().map(String::as_str).collect();
                let observed_bytes = state.responses.begin_scoped(scope_refs.iter().copied());
                let observed_body = state.cache.begin_scoped(scope_refs.iter().copied());
                let body: Option<Arc<str>> = state.cache.get(&key);
                let body = match body {
                    Some(body) => body,
                    None => {
                        // Only the miss path is expensive — gate it.
                        let _permit = match ctx.gate_for(class) {
                            Ok(permit) => permit,
                            Err(reason) => return RouteOutcome::Shed(reason),
                        };
                        if ctx.expired() {
                            return RouteOutcome::Shed(ShedReason::Deadline);
                        }
                        let evaluated = state.with_store(|s| api::handle(s, request));
                        if let Some(trace) = ctx.trace {
                            trace.stamp(Stage::Evaluated);
                        }
                        match evaluated {
                            Ok(response) => {
                                let rendered: Arc<str> =
                                    Arc::from(state.rendered(&response).as_str());
                                state.cache.insert_scoped(
                                    key.clone(),
                                    Arc::clone(&rendered),
                                    observed_body,
                                );
                                rendered
                            }
                            Err(e) => {
                                let (status, body) = store_error(e);
                                return RouteOutcome::Response(encode_response(
                                    status,
                                    body.into(),
                                ));
                            }
                        }
                    }
                };
                let payload = encode_cached(200, body.as_bytes().to_vec());
                state
                    .responses
                    .insert_scoped(key, payload.clone(), observed_bytes);
                payload
            } else {
                let _permit = match ctx.gate_for(class) {
                    Ok(permit) => permit,
                    Err(reason) => return RouteOutcome::Shed(reason),
                };
                if ctx.expired() {
                    return RouteOutcome::Shed(ShedReason::Deadline);
                }
                let evaluated = state.with_store(|s| api::handle(s, request));
                if let Some(trace) = ctx.trace {
                    trace.stamp(Stage::Evaluated);
                }
                match evaluated {
                    Ok(response) => encode_response(200, state.rendered(&response).into()),
                    Err(e) => {
                        let (status, body) = store_error(e);
                        encode_response(status, body.into())
                    }
                }
            }
        }
        Ok(Routed::Stats) => stats_response(state),
        Ok(Routed::Prometheus) => prometheus_response(state),
        Ok(Routed::Traces) => traces_response(state),
        Ok(Routed::ReplicationWal {
            from,
            wait_ms,
            snap,
        }) => replication_wal_response(state, from, wait_ms, snap),
        Ok(Routed::ReplicationSnapshot) => replication_snapshot_response(state),
        Ok(Routed::Health) => {
            // Liveness: the process routes requests. Nothing else.
            let body =
                serde_json::to_string(&Value::object([("ok".to_string(), Value::from(true))]));
            encode_response(200, body.into())
        }
        Ok(Routed::Ready) => readyz_response(state, ctx.options),
        Err((status, body)) => encode_response(status, body.into()),
    })
}

/// `GET /debug/sleep?ms=N` (test-only): a compute-class request that
/// holds its worker and compute permit for `N` ms — the deterministic
/// load the overload tests saturate the server with.
fn debug_sleep(params: &Params, ctx: &RequestContext) -> RouteOutcome {
    let ms = match parse_param(params, "ms", "50", |s| s.parse::<u64>().ok()) {
        Ok(ms) => ms.min(10_000),
        Err((status, body)) => return RouteOutcome::Response(encode_response(status, body.into())),
    };
    let _permit = match ctx.gate_for(Class::Compute) {
        Ok(permit) => permit,
        Err(reason) => return RouteOutcome::Shed(reason),
    };
    if ctx.expired() {
        return RouteOutcome::Shed(ShedReason::Deadline);
    }
    std::thread::sleep(Duration::from_millis(ms));
    if let Some(trace) = ctx.trace {
        trace.stamp(Stage::Evaluated);
    }
    let body = serde_json::to_string(&Value::object([("slept_ms".to_string(), Value::from(ms))]));
    RouteOutcome::Response(encode_response(200, body.into()))
}

/// The `/stats` body: cache counters plus the overload block
/// (queue gauges, sheds by reason, per-class in-flight, cache bytes).
fn stats_response(state: &ServerState) -> CachedResponse {
    let cache = state.cache();
    let responses = state.response_cache();
    let ov = state.overload();
    let [queue_full, deadline, class_saturated, draining] = ov.sheds();
    let (inflight_cached, inflight_compute, inflight_write) = ov.inflight();
    let role = match state.hub.role() {
        Role::Primary => "primary",
        Role::Replica => "replica",
    };
    let body = serde_json::to_string(&Value::object([
        ("generation".to_string(), Value::from(cache.generation())),
        ("poisoned".to_string(), Value::from(state.wal_poisoned())),
        ("role".to_string(), Value::from(role)),
        ("hits".to_string(), Value::from(cache.hits())),
        ("misses".to_string(), Value::from(cache.misses())),
        ("entries".to_string(), Value::from(cache.len())),
        ("response_hits".to_string(), Value::from(responses.hits())),
        (
            "response_misses".to_string(),
            Value::from(responses.misses()),
        ),
        ("response_entries".to_string(), Value::from(responses.len())),
        ("cache_bytes".to_string(), Value::from(cache.bytes())),
        (
            "response_cache_bytes".to_string(),
            Value::from(responses.bytes()),
        ),
        (
            "json_renders".to_string(),
            Value::from(state.json_renders()),
        ),
        (
            "connections".to_string(),
            Value::from(state.connections_accepted()),
        ),
        (
            "open_connections".to_string(),
            Value::from(state.telemetry.open_connections() as f64),
        ),
        ("queue_depth".to_string(), Value::from(ov.queue_depth())),
        (
            "queue_max_depth".to_string(),
            Value::from(ov.queue_max_depth()),
        ),
        ("admitted".to_string(), Value::from(ov.admitted())),
        ("shed_queue_full".to_string(), Value::from(queue_full)),
        ("shed_deadline".to_string(), Value::from(deadline)),
        (
            "shed_class_saturated".to_string(),
            Value::from(class_saturated),
        ),
        ("shed_draining".to_string(), Value::from(draining)),
        (
            "deadline_exceeded".to_string(),
            Value::from(ov.deadline_exceeded()),
        ),
        (
            "method_not_allowed".to_string(),
            Value::from(ov.method_not_allowed()),
        ),
        ("inflight_cached".to_string(), Value::from(inflight_cached)),
        (
            "inflight_compute".to_string(),
            Value::from(inflight_compute),
        ),
        ("inflight_write".to_string(), Value::from(inflight_write)),
    ]));
    encode_response(200, body.into())
}

/// The `/readyz` body + status: ready (200) only while the store is
/// loaded, the WAL has not been poisoned by a disk failure, and the
/// recent shed rate is below the configured threshold.
fn readyz_response(state: &ServerState, options: &ServeOptions) -> CachedResponse {
    let poisoned = state.wal_poisoned();
    let shed_rate = state.recent_shed_rate();
    let draining = state.is_draining();
    let hub = &state.hub;
    let is_replica = !hub.is_primary();
    let role = if is_replica { "replica" } else { "primary" };
    let lag = hub.lag();
    // The lag gate takes a stale replica out of rotation; primaries
    // (lag zero by definition) are never gated by it.
    let lag_exceeded = is_replica
        && options
            .max_replica_lag
            .is_some_and(|max_ms| lag.ms > max_ms);
    let ready =
        !poisoned && !draining && !lag_exceeded && shed_rate <= options.shed_ready_threshold;
    let (_, applied_offset, applied_records) = hub.position();
    let body = serde_json::to_string(&Value::object([
        ("ready".to_string(), Value::from(ready)),
        ("store_loaded".to_string(), Value::from(true)),
        ("wal_poisoned".to_string(), Value::from(poisoned)),
        ("draining".to_string(), Value::from(draining)),
        ("recent_shed_rate".to_string(), Value::from(shed_rate)),
        ("role".to_string(), Value::from(role)),
        (
            "applied_offset_bytes".to_string(),
            Value::from(applied_offset),
        ),
        ("applied_records".to_string(), Value::from(applied_records)),
        ("replication_lag_bytes".to_string(), Value::from(lag.bytes)),
        (
            "replication_lag_records".to_string(),
            Value::from(lag.records),
        ),
        ("replication_lag_ms".to_string(), Value::from(lag.ms)),
        (
            "replication_lag_exceeded".to_string(),
            Value::from(lag_exceeded),
        ),
        (
            "replication_connected".to_string(),
            Value::from(hub.connected()),
        ),
    ]));
    encode_response(if ready { 200 } else { 503 }, body.into())
}

/// The `GET /metrics` body: every `/stats` counter and gauge plus the
/// telemetry histograms, in Prometheus text exposition format.
/// Rendered fresh on every scrape — never cached, no `ETag`.
fn prometheus_response(state: &ServerState) -> CachedResponse {
    let mut out = String::with_capacity(8 * 1024);
    let t = &state.telemetry;
    let cache = state.cache();
    let responses = state.response_cache();
    let ov = state.overload();
    let [queue_full, deadline, class_saturated, draining] = ov.sheds();
    let (inflight_cached, inflight_compute, inflight_write) = ov.inflight();

    telemetry::write_family(
        &mut out,
        "frost_http_requests_total",
        "counter",
        "Responses completed (last byte written), by endpoint.",
    );
    for endpoint in Endpoint::ALL {
        let n = t.requests_for(endpoint);
        if n > 0 {
            telemetry::write_sample(
                &mut out,
                "frost_http_requests_total",
                &endpoint_labels(endpoint),
                n as f64,
            );
        }
    }
    telemetry::write_family(
        &mut out,
        "frost_http_slow_requests_total",
        "counter",
        "Requests exceeding the --slow-request-ms threshold.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_http_slow_requests_total",
        "",
        t.slow_total() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_connections_accepted_total",
        "counter",
        "Connections accepted since start.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_connections_accepted_total",
        "",
        state.connections_accepted() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_open_connections",
        "gauge",
        "Connections currently open on the event loops.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_open_connections",
        "",
        t.open_connections() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_admitted_total",
        "counter",
        "Requests admitted to the dispatch queue.",
    );
    telemetry::write_sample(&mut out, "frost_admitted_total", "", ov.admitted() as f64);
    telemetry::write_family(
        &mut out,
        "frost_shed_total",
        "counter",
        "Requests shed with 503, by reason.",
    );
    for (reason, n) in [
        ("queue_full", queue_full),
        ("deadline", deadline),
        ("class_saturated", class_saturated),
        ("draining", draining),
    ] {
        telemetry::write_sample(
            &mut out,
            "frost_shed_total",
            &format!("reason=\"{reason}\""),
            n as f64,
        );
    }
    telemetry::write_family(
        &mut out,
        "frost_deadline_exceeded_total",
        "counter",
        "Responses that finished after their deadline had passed.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_deadline_exceeded_total",
        "",
        ov.deadline_exceeded() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_method_not_allowed_total",
        "counter",
        "Requests rejected with 405.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_method_not_allowed_total",
        "",
        ov.method_not_allowed() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_queue_depth",
        "gauge",
        "Requests currently waiting in the dispatch queue.",
    );
    telemetry::write_sample(&mut out, "frost_queue_depth", "", ov.queue_depth() as f64);
    telemetry::write_family(
        &mut out,
        "frost_queue_max_depth",
        "gauge",
        "High-water mark of the dispatch queue.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_queue_max_depth",
        "",
        ov.queue_max_depth() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_inflight_requests",
        "gauge",
        "Requests currently being routed, by cost class.",
    );
    for (class, n) in [
        ("cached", inflight_cached),
        ("compute", inflight_compute),
        ("write", inflight_write),
    ] {
        telemetry::write_sample(
            &mut out,
            "frost_inflight_requests",
            &format!("class=\"{class}\""),
            n as f64,
        );
    }
    telemetry::write_family(
        &mut out,
        "frost_cache_hits_total",
        "counter",
        "Result-cache hits, by tier (body = rendered JSON, response = serialized bytes).",
    );
    telemetry::write_family(
        &mut out,
        "frost_cache_misses_total",
        "counter",
        "Result-cache misses, by tier.",
    );
    telemetry::write_family(
        &mut out,
        "frost_cache_entries",
        "gauge",
        "Live result-cache entries, by tier.",
    );
    telemetry::write_family(
        &mut out,
        "frost_cache_bytes",
        "gauge",
        "Tracked result-cache bytes, by tier.",
    );
    for (tier, hits, misses, entries, bytes) in [
        (
            "body",
            cache.hits(),
            cache.misses(),
            cache.len(),
            cache.bytes(),
        ),
        (
            "response",
            responses.hits(),
            responses.misses(),
            responses.len(),
            responses.bytes(),
        ),
    ] {
        let labels = format!("tier=\"{tier}\"");
        telemetry::write_sample(&mut out, "frost_cache_hits_total", &labels, hits as f64);
        telemetry::write_sample(&mut out, "frost_cache_misses_total", &labels, misses as f64);
        telemetry::write_sample(&mut out, "frost_cache_entries", &labels, entries as f64);
        telemetry::write_sample(&mut out, "frost_cache_bytes", &labels, bytes as f64);
    }
    telemetry::write_family(
        &mut out,
        "frost_cache_generation",
        "gauge",
        "Store mutation generation both cache tiers are stamped with.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_cache_generation",
        "",
        cache.generation() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_json_renders_total",
        "counter",
        "JSON serializations actually performed (cache misses).",
    );
    telemetry::write_sample(
        &mut out,
        "frost_json_renders_total",
        "",
        state.json_renders() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_wal_poisoned",
        "gauge",
        "1 when a WAL disk failure has poisoned the write path.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_wal_poisoned",
        "",
        if state.wal_poisoned() { 1.0 } else { 0.0 },
    );
    telemetry::write_family(
        &mut out,
        "frost_draining",
        "gauge",
        "1 while the server is draining for shutdown.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_draining",
        "",
        if state.is_draining() { 1.0 } else { 0.0 },
    );

    let hub = &state.hub;
    let lag = hub.lag();
    let (_, applied_offset, applied_records) = hub.position();
    telemetry::write_family(
        &mut out,
        "frost_replication_role",
        "gauge",
        "Replication role: 0 = primary, 1 = replica.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_role",
        "",
        if hub.is_primary() { 0.0 } else { 1.0 },
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_applied_offset_bytes",
        "gauge",
        "Durable WAL length of this node (the offset replicas poll from).",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_applied_offset_bytes",
        "",
        applied_offset as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_applied_records",
        "gauge",
        "WAL records in this node's durable prefix.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_applied_records",
        "",
        applied_records as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_lag_bytes",
        "gauge",
        "WAL bytes the primary has that this replica has not applied (0 on a primary).",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_lag_bytes",
        "",
        lag.bytes as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_lag_records",
        "gauge",
        "WAL records the primary has that this replica has not applied (0 on a primary).",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_lag_records",
        "",
        lag.records as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_lag_seconds",
        "gauge",
        "Seconds since this replica last matched the primary's WAL length (0-ish when caught up).",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_lag_seconds",
        "",
        lag.ms as f64 / 1000.0,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_connected",
        "gauge",
        "1 while the replica's last poll of its primary succeeded.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_connected",
        "",
        if hub.connected() { 1.0 } else { 0.0 },
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_polls_total",
        "counter",
        "Replication WAL polls served to replicas.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_polls_total",
        "",
        hub.polls() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_streamed_bytes_total",
        "counter",
        "WAL and snapshot payload bytes streamed to replicas.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_streamed_bytes_total",
        "",
        hub.streamed_bytes() as f64,
    );
    telemetry::write_family(
        &mut out,
        "frost_replication_sync_timeouts_total",
        "counter",
        "Semi-sync writes answered 503 because no replica acknowledged in time.",
    );
    telemetry::write_sample(
        &mut out,
        "frost_replication_sync_timeouts_total",
        "",
        hub.sync_timeouts() as f64,
    );

    telemetry::write_family(
        &mut out,
        "frost_http_request_duration_seconds",
        "histogram",
        "End-to-end request latency (accepted to last byte), by endpoint.",
    );
    for endpoint in Endpoint::ALL {
        let h = t.e2e_histogram(endpoint);
        if h.count() > 0 {
            telemetry::write_histogram(
                &mut out,
                "frost_http_request_duration_seconds",
                &endpoint_labels(endpoint),
                h,
                1e-9,
            );
        }
    }
    telemetry::write_family(
        &mut out,
        "frost_http_stage_duration_seconds",
        "histogram",
        "Duration of each request lifecycle stage (see /debug/traces glossary).",
    );
    for stage in &Stage::ALL[1..] {
        telemetry::write_histogram(
            &mut out,
            "frost_http_stage_duration_seconds",
            &format!("stage=\"{}\"", stage.name()),
            t.stage_histogram(*stage),
            1e-9,
        );
    }
    telemetry::write_family(
        &mut out,
        "frost_wal_append_duration_seconds",
        "histogram",
        "WAL frame append (write) duration.",
    );
    telemetry::write_histogram(
        &mut out,
        "frost_wal_append_duration_seconds",
        "",
        &t.wal().append,
        1e-9,
    );
    telemetry::write_family(
        &mut out,
        "frost_wal_fsync_duration_seconds",
        "histogram",
        "WAL fsync duration.",
    );
    telemetry::write_histogram(
        &mut out,
        "frost_wal_fsync_duration_seconds",
        "",
        &t.wal().fsync,
        1e-9,
    );
    telemetry::write_family(
        &mut out,
        "frost_event_loop_poll_dwell_seconds",
        "histogram",
        "Wall time spent inside each poll(2) call.",
    );
    telemetry::write_histogram(
        &mut out,
        "frost_event_loop_poll_dwell_seconds",
        "",
        t.poll_dwell(),
        1e-9,
    );
    telemetry::write_family(
        &mut out,
        "frost_event_loop_dispatch_batch",
        "histogram",
        "Events handled per event-loop wake (adoptions + completions + readiness).",
    );
    telemetry::write_histogram(
        &mut out,
        "frost_event_loop_dispatch_batch",
        "",
        t.dispatch_batch(),
        1.0,
    );

    encode_text(200, out.into_bytes(), CONTENT_TYPE_PROMETHEUS)
}

/// The `endpoint="…",class="…"` label pair of one endpoint.
fn endpoint_labels(endpoint: Endpoint) -> String {
    format!(
        "endpoint=\"{}\",class=\"{}\"",
        endpoint.name(),
        endpoint.class_name()
    )
}

/// The `GET /debug/traces` body: the retained per-stage traces, most
/// recent first. Never cached.
fn traces_response(state: &ServerState) -> CachedResponse {
    let body = serde_json::to_string(&state.telemetry.traces_json());
    encode_response(200, body.into())
}

/// `GET /replication/wal?from=<offset>`: the long-poll WAL tail. The
/// reply is a [`StreamPreamble`] followed by the raw CRC-framed WAL
/// bytes from `from` to the durable length — exactly the bytes a
/// single-node recovery would replay. When the caller is current the
/// request is held open (condvar, no locks) up to `wait_ms` waiting
/// for the next append; a snapshot-epoch mismatch answers immediately
/// with empty frames so the caller re-bootstraps.
///
/// The poll doubles as the replication acknowledgement: a caller
/// asking for bytes past `from` has everything before `from` durable,
/// which is what `--sync-replication` writers wait on.
fn replication_wal_response(
    state: &ServerState,
    from: u64,
    wait_ms: u64,
    snap: Option<SnapshotId>,
) -> CachedResponse {
    let hub = &state.hub;
    let (current_snap, _, _) = hub.position();
    let snap = snap.unwrap_or(current_snap);
    hub.note_poll(snap, from);
    let wait = Duration::from_millis(wait_ms.min(MAX_POLL_WAIT_MS));
    hub.wait_for_data(from, snap, wait);
    // Serve under the writer lock so position and file bytes stay
    // consistent — no append or compaction can race the read.
    let writer = state.writer.lock();
    let Some(d) = writer.as_ref() else {
        return encode_response(
            400,
            error_body("store is volatile (no WAL): replication unavailable").into(),
        );
    };
    let snapshot_id = d.snapshot_id();
    let wal_len = d.wal_len();
    let records = d.wal_records();
    let frames: Vec<u8> = if snap == snapshot_id && from >= WAL_HEADER_LEN && from < wal_len {
        match d.read_wal() {
            Ok(bytes) => bytes
                .get(from as usize..)
                .map(<[u8]>::to_vec)
                .unwrap_or_default(),
            Err(e) => {
                return encode_response(500, error_body(&format!("WAL read failed: {e}")).into());
            }
        }
    } else {
        Vec::new()
    };
    drop(writer);
    hub.add_streamed(frames.len() as u64);
    let preamble = StreamPreamble {
        primary: hub.is_primary(),
        snapshot: snapshot_id,
        wal_len,
        records,
    };
    let mut body = Vec::with_capacity(replication::STREAM_PREAMBLE_LEN + frames.len());
    body.extend_from_slice(&preamble.encode());
    body.extend_from_slice(&frames);
    encode_text(200, body, CONTENT_TYPE_BINARY)
}

/// `GET /replication/snapshot`: preamble + the exact current FROSTB
/// snapshot bytes — the replica bootstrap payload. Served under the
/// writer lock so a concurrent compaction cannot swap the file
/// mid-read.
fn replication_snapshot_response(state: &ServerState) -> CachedResponse {
    let writer = state.writer.lock();
    let Some(d) = writer.as_ref() else {
        return encode_response(
            400,
            error_body("store is volatile (no snapshot): replication unavailable").into(),
        );
    };
    let bytes = match d.read_snapshot() {
        Ok(bytes) => bytes,
        Err(e) => {
            return encode_response(
                500,
                error_body(&format!("snapshot read failed: {e}")).into(),
            );
        }
    };
    let preamble = StreamPreamble {
        primary: state.hub.is_primary(),
        snapshot: d.snapshot_id(),
        wal_len: d.wal_len(),
        records: d.wal_records(),
    };
    drop(writer);
    state.hub.add_streamed(bytes.len() as u64);
    let mut body = Vec::with_capacity(replication::STREAM_PREAMBLE_LEN + bytes.len());
    body.extend_from_slice(&preamble.encode());
    body.extend_from_slice(&bytes);
    encode_text(200, body, CONTENT_TYPE_BINARY)
}

/// The write-method dispatcher: `POST /experiments` (CSV import),
/// `DELETE /experiments/<name>`, `POST /snapshot/save`. Anything else
/// reached with a write method is a 405.
fn route_write(
    method: &str,
    path: &str,
    params: &Params,
    body: &[u8],
    state: &ServerState,
) -> Result<api::Response, (u16, String)> {
    match (method, path) {
        ("POST", "/experiments") => {
            let dataset = params.required("dataset")?;
            let name = params.required("name")?;
            let csv = std::str::from_utf8(body)
                .map_err(|_| (400, error_body("request body is not valid UTF-8")))?;
            if csv.trim().is_empty() {
                return Err((400, error_body("request body is empty; expected CSV")));
            }
            state.import_experiment(dataset, name, csv)
        }
        ("POST", "/snapshot/save") => state.save_snapshot(),
        ("DELETE", p) => {
            let Some(name) = p.strip_prefix("/experiments/").filter(|n| !n.is_empty()) else {
                return Err((
                    405,
                    error_body("DELETE is only supported on /experiments/<name>"),
                ));
            };
            state.delete_experiment(name)
        }
        _ => Err((405, error_body("only GET is supported on this endpoint"))),
    }
}

fn durable_error(e: DurableError) -> (u16, String) {
    (500, error_body(&format!("write failed: {e}")))
}

enum Routed {
    Api {
        request: Request,
        cache_key: Option<String>,
        /// Invalidation scopes the response depends on (see the
        /// [module docs](self) table); stamped into both cache tiers.
        scopes: Vec<String>,
    },
    Stats,
    /// `/healthz`: liveness.
    Health,
    /// `/readyz`: readiness (store loaded, WAL healthy, shed rate
    /// under threshold).
    Ready,
    /// `GET /metrics` without an `experiment` parameter: the
    /// Prometheus text exposition. Never cached — scrapers must see
    /// live values.
    Prometheus,
    /// `GET /debug/traces`: the last-N request traces. Never cached.
    Traces,
    /// `GET /replication/wal?from=<offset>`: long-poll WAL tail for
    /// replicas. Never cached.
    ReplicationWal {
        from: u64,
        wait_ms: u64,
        /// The snapshot epoch the caller's WAL applies over; a
        /// mismatch with ours means the caller must re-bootstrap, so
        /// the server answers immediately with empty frames. `None`
        /// (parameters absent) means "whatever the server has".
        snap: Option<SnapshotId>,
    },
    /// `GET /replication/snapshot`: the current FROSTB snapshot bytes
    /// (replica bootstrap). Never cached.
    ReplicationSnapshot,
}

fn build_request(path: &str, params: &Params) -> Result<Routed, (u16, String)> {
    let api = |request, cache_key, scopes| {
        Ok(Routed::Api {
            request,
            cache_key,
            scopes,
        })
    };
    let exp_scope = |e: &str| vec![format!("exp:{e}")];
    match path {
        "/datasets" => api(
            Request::ListDatasets,
            Some(cache_key("datasets", &[])),
            vec!["sys:datasets".to_string()],
        ),
        "/experiments" => {
            let dataset = params.get("dataset").map(str::to_string);
            let key = cache_key("experiments", &[dataset.as_deref().unwrap_or("")]);
            api(
                Request::ListExperiments { dataset },
                Some(key),
                vec!["sys:experiments".to_string()],
            )
        }
        "/profile" => {
            let dataset = params.required("dataset")?.to_string();
            let key = cache_key("profile", &[&dataset]);
            let scopes = vec![format!("ds:{dataset}")];
            api(Request::ProfileDataset { dataset }, Some(key), scopes)
        }
        "/matrix" => {
            let experiment = params.required("experiment")?.to_string();
            let key = cache_key("matrix", &[&experiment]);
            let scopes = exp_scope(&experiment);
            api(
                Request::GetConfusionMatrix { experiment },
                Some(key),
                scopes,
            )
        }
        "/metrics" => {
            // The bare path is the Prometheus exposition; with an
            // `experiment` parameter it is the evaluation-metrics API
            // (an empty value is still the API's 400, not a scrape).
            if params.get("experiment").is_none() {
                return Ok(Routed::Prometheus);
            }
            let experiment = params.required("experiment")?.to_string();
            let key = cache_key("metrics", &[&experiment]);
            let scopes = exp_scope(&experiment);
            api(Request::GetMetrics { experiment }, Some(key), scopes)
        }
        "/diagram" => {
            let experiment = params.required("experiment")?.to_string();
            let x = parse_param(params, "x", "recall", json::parse_metric)?;
            let y = parse_param(params, "y", "precision", json::parse_metric)?;
            let engine = parse_param(params, "engine", "optimized", json::parse_engine)?;
            let samples = parse_param(params, "samples", "20", |s| s.parse::<usize>().ok())?;
            if samples < 2 {
                return Err((400, error_body("samples must be at least 2")));
            }
            let key = cache_key(
                "diagram",
                &[
                    &experiment,
                    &x.to_string(),
                    &y.to_string(),
                    &format!("{engine:?}"),
                    &samples.to_string(),
                ],
            );
            let scopes = exp_scope(&experiment);
            api(
                Request::GetDiagram {
                    experiment,
                    x,
                    y,
                    engine,
                    samples,
                },
                Some(key),
                scopes,
            )
        }
        "/compare" | "/venn" => {
            let list = params.required("experiments")?;
            let experiments: Vec<String> = list
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if experiments.is_empty() {
                return Err((400, error_body("experiments list is empty")));
            }
            // /venn is the N-Intersection view including the ground
            // truth; /compare defaults to experiments only.
            let default_gold = path == "/venn";
            let include_gold = match params.get("gold") {
                None => default_gold,
                Some("true") => true,
                Some("false") => false,
                Some(other) => return Err((400, error_body(&format!("bad gold flag {other:?}")))),
            };
            let mut key_parts: Vec<&str> = experiments.iter().map(String::as_str).collect();
            let gold_part = include_gold.to_string();
            key_parts.push(&gold_part);
            let key = cache_key("venn", &key_parts);
            let scopes = experiments.iter().map(|e| format!("exp:{e}")).collect();
            api(
                Request::CompareExperiments {
                    experiments,
                    include_gold,
                },
                Some(key),
                scopes,
            )
        }
        "/cluster-metrics" => {
            let experiment = params.required("experiment")?.to_string();
            let key = cache_key("cluster-metrics", &[&experiment]);
            let scopes = exp_scope(&experiment);
            api(Request::GetClusterMetrics { experiment }, Some(key), scopes)
        }
        "/ratios" => {
            let experiment = params.required("experiment")?.to_string();
            let kind = parse_param(params, "kind", "null", json::parse_ratio_kind)?;
            let key = cache_key("ratios", &[&experiment, &format!("{kind:?}")]);
            let scopes = exp_scope(&experiment);
            api(
                Request::GetAttributeRatios { experiment, kind },
                Some(key),
                scopes,
            )
        }
        "/errors" => {
            let experiment = params.required("experiment")?.to_string();
            let key = cache_key("errors", &[&experiment]);
            let scopes = exp_scope(&experiment);
            api(Request::GetErrorProfile { experiment }, Some(key), scopes)
        }
        "/quality" => {
            let experiment = params.required("experiment")?.to_string();
            let key = cache_key("quality", &[&experiment]);
            let scopes = exp_scope(&experiment);
            api(Request::GetQualitySignals { experiment }, Some(key), scopes)
        }
        "/stats" => Ok(Routed::Stats),
        "/healthz" => Ok(Routed::Health),
        "/readyz" => Ok(Routed::Ready),
        "/debug/traces" => Ok(Routed::Traces),
        "/replication/wal" => {
            let from = parse_param(params, "from", "", |s| s.parse::<u64>().ok())?;
            let wait_ms = parse_param(
                params,
                "wait_ms",
                &replication::REPLICA_POLL_WAIT_MS.to_string(),
                |s| s.parse::<u64>().ok(),
            )?;
            let snap = match (params.get("snap_len"), params.get("snap_crc")) {
                (Some(len), Some(crc)) => Some(SnapshotId {
                    len: len
                        .parse()
                        .map_err(|_| (400, error_body("bad snap_len value")))?,
                    crc: crc
                        .parse()
                        .map_err(|_| (400, error_body("bad snap_crc value")))?,
                }),
                _ => None,
            };
            Ok(Routed::ReplicationWal {
                from,
                wait_ms,
                snap,
            })
        }
        "/replication/snapshot" => Ok(Routed::ReplicationSnapshot),
        other => Err((404, error_body(&format!("no such endpoint {other:?}")))),
    }
}

/// Builds an unambiguous cache key: every component is
/// length-prefixed, so user-controlled names (which may contain any
/// byte, including the separators) cannot alias another request's
/// key.
fn cache_key(kind: &str, parts: &[&str]) -> String {
    let mut key =
        String::with_capacity(kind.len() + parts.iter().map(|p| p.len() + 8).sum::<usize>());
    key.push_str(kind);
    for p in parts {
        key.push('\u{1}');
        key.push_str(&p.len().to_string());
        key.push(':');
        key.push_str(p);
    }
    key
}

fn parse_param<T>(
    params: &Params,
    key: &str,
    default: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<T, (u16, String)> {
    let raw = params.get(key).unwrap_or(default);
    parse(raw).ok_or_else(|| (400, error_body(&format!("bad {key} value {raw:?}"))))
}

fn store_error(e: StoreError) -> (u16, String) {
    let status = match &e {
        StoreError::UnknownDataset(_)
        | StoreError::UnknownExperiment(_)
        | StoreError::NoGoldStandard(_) => 404,
        _ => 400,
    };
    (status, error_body(&e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_decodes_queries() {
        let (path, params) = parse_target("/diagram?experiment=run%201&samples=5&flag");
        assert_eq!(path, "/diagram");
        assert_eq!(
            params,
            vec![
                ("experiment".to_string(), "run 1".to_string()),
                ("samples".to_string(), "5".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert_eq!(percent_decode("a+b%2Cc%"), "a b,c%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    fn parse_all(bytes: &[u8]) -> Vec<Parsed> {
        let mut buffer = RequestBuffer::new();
        buffer.extend(bytes);
        let mut out = Vec::new();
        loop {
            match buffer.next_request() {
                Parsed::Incomplete => break,
                done @ Parsed::Error(_) => {
                    out.push(done);
                    break;
                }
                request => out.push(request),
            }
        }
        out
    }

    fn get_request(target: &str, keep_alive: bool) -> ParsedRequest {
        ParsedRequest {
            method: "GET".into(),
            target: target.into(),
            keep_alive,
            content_length: 0,
            if_none_match: None,
            body: Vec::new(),
        }
    }

    #[test]
    fn parses_single_and_pipelined_heads() {
        let got = parse_all(b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(
            got,
            vec![
                Parsed::Request(get_request("/a", true)),
                Parsed::Request(get_request("/b", true)),
            ]
        );
    }

    #[test]
    fn post_bodies_are_consumed_and_split_safely() {
        let mut buffer = RequestBuffer::new();
        buffer.extend(
            b"POST /experiments?dataset=d&name=n HTTP/1.1\r\nContent-Length: 12\r\n\r\nid1,",
        );
        // Head complete, body partial: not a request yet.
        assert_eq!(buffer.next_request(), Parsed::Incomplete);
        assert_eq!(
            buffer.next_request(),
            Parsed::Incomplete,
            "stable while waiting"
        );
        buffer.extend(b"id2\na,");
        assert_eq!(buffer.next_request(), Parsed::Incomplete);
        // Final body bytes plus a pipelined GET behind them.
        buffer.extend(b"b\nGET /datasets HTTP/1.1\r\n\r\n");
        let Parsed::Request(post) = buffer.next_request() else {
            panic!("complete POST must parse")
        };
        assert_eq!(post.method, "POST");
        assert_eq!(post.content_length, 12);
        assert_eq!(post.body, b"id1,id2\na,b\n".to_vec());
        let Parsed::Request(get) = buffer.next_request() else {
            panic!("pipelined GET must parse")
        };
        assert_eq!(get.target, "/datasets");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let mut buffer = RequestBuffer::new();
        buffer.extend(
            format!(
                "POST /experiments HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        );
        assert!(matches!(buffer.next_request(), Parsed::Error(_)));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let close = parse_all(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
        assert_eq!(close, vec![Parsed::Request(get_request("/", false))]);
        let old = parse_all(b"GET / HTTP/1.0\r\n\r\n");
        assert!(matches!(
            &old[0],
            Parsed::Request(r) if !r.keep_alive
        ));
        let old_ka = parse_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(
            matches!(&old_ka[0], Parsed::Request(r) if !r.keep_alive),
            "1.0 opt-in keep-alive is not implemented and must close"
        );
    }

    #[test]
    fn bare_lf_terminators_parse() {
        let got = parse_all(b"GET /x HTTP/1.1\nHost: y\n\n");
        assert!(matches!(&got[0], Parsed::Request(r) if r.target == "/x"));
    }

    #[test]
    fn malformed_heads_are_errors() {
        assert!(matches!(parse_all(b"GARBAGE\r\n\r\n")[0], Parsed::Error(_)));
        assert!(matches!(parse_all(b"\r\n\r\n")[0], Parsed::Error(_)));
        assert!(matches!(
            parse_all(b"GET / SPDY/3\r\n\r\n")[0],
            Parsed::Error(_)
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n")[0],
            Parsed::Error(_)
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")[0],
            Parsed::Error(_)
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")[0],
            Parsed::Error(_)
        ));
    }

    #[test]
    fn oversized_head_is_rejected_before_completion() {
        let mut buffer = RequestBuffer::new();
        buffer.extend(b"GET /");
        buffer.extend(&vec![b'a'; MAX_REQUEST_BYTES + 1]);
        assert!(matches!(buffer.next_request(), Parsed::Error(_)));
    }

    #[test]
    fn buffer_compacts_consumed_heads() {
        let mut buffer = RequestBuffer::new();
        let request = b"GET /loop HTTP/1.1\r\n\r\n";
        for _ in 0..1_000 {
            buffer.extend(request);
            assert!(matches!(buffer.next_request(), Parsed::Request(_)));
        }
        assert!(
            buffer.buf.capacity() < 64 * 1024,
            "buffer must not grow with served request count (capacity {})",
            buffer.buf.capacity()
        );
    }
}
