//! WAL-shipping replication: primary/replica roles for `frostd`.
//!
//! A replica bootstraps from the primary's FROSTB snapshot
//! (`GET /replication/snapshot`), then tails its WAL over a long-poll
//! endpoint (`GET /replication/wal?from=<offset>`). The streamed bytes
//! are the primary's CRC-framed FROSTW records verbatim — the replica
//! applies each through [`DurableStore::append`]'s normal path, so its
//! on-disk state is byte-identical to what single-node recovery would
//! produce by construction.
//!
//! The pieces here are deliberately transport-dumb:
//!
//! - [`StreamPreamble`] — a tiny fixed header prefixed to every
//!   replication body so the replica can detect snapshot-epoch changes
//!   (the primary compacted) and learn the primary's current position
//!   for lag accounting.
//! - [`ReplicationHub`] — shared state between the HTTP handlers and
//!   the replica apply thread: role, positions, condvars for long-poll
//!   wakeup (primary side) and semi-sync write acknowledgement.
//! - [`run_replica`] — the tailing loop, spawned as one thread by
//!   `serve_with` when `--replica-of` is set.
//!
//! [`DurableStore::append`]: frost_storage::durable::DurableStore::append

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use frost_storage::wal::{self, SnapshotId};

use crate::http::ServerState;

// ---------------------------------------------------------------------
// Stream preamble
// ---------------------------------------------------------------------

/// Magic prefixed to every replication response body.
pub const STREAM_MAGIC: &[u8; 4] = b"FRSR";
/// Replication stream format version.
pub const STREAM_VERSION: u16 = 1;
/// Encoded preamble size in bytes.
pub const STREAM_PREAMBLE_LEN: usize = 36;
/// Flag bit: the serving node considers itself a primary.
pub const FLAG_PRIMARY: u16 = 1;

/// Fixed header at the start of every `/replication/wal` and
/// `/replication/snapshot` body. Identifies the snapshot epoch the
/// following bytes belong to and the serving node's current WAL
/// position, so the replica can compute lag and detect compaction
/// without extra round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPreamble {
    /// Whether the serving node is a primary (replicas can be chained).
    pub primary: bool,
    /// Identity of the snapshot the server's WAL applies over.
    pub snapshot: SnapshotId,
    /// The server's durable WAL length in bytes (frame region included,
    /// header included — the same coordinate `?from=` uses).
    pub wal_len: u64,
    /// Frames in the server's durable WAL prefix.
    pub records: u64,
}

impl StreamPreamble {
    /// Serializes the preamble to its fixed 36-byte wire form.
    pub fn encode(&self) -> [u8; STREAM_PREAMBLE_LEN] {
        let mut out = [0u8; STREAM_PREAMBLE_LEN];
        out[0..4].copy_from_slice(STREAM_MAGIC);
        out[4..6].copy_from_slice(&STREAM_VERSION.to_le_bytes());
        let flags: u16 = if self.primary { FLAG_PRIMARY } else { 0 };
        out[6..8].copy_from_slice(&flags.to_le_bytes());
        out[8..16].copy_from_slice(&self.snapshot.len.to_le_bytes());
        out[16..20].copy_from_slice(&self.snapshot.crc.to_le_bytes());
        out[20..28].copy_from_slice(&self.wal_len.to_le_bytes());
        out[28..36].copy_from_slice(&self.records.to_le_bytes());
        out
    }

    /// Decodes a preamble from the front of `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<StreamPreamble, String> {
        if bytes.len() < STREAM_PREAMBLE_LEN {
            return Err(format!(
                "replication preamble truncated: {} of {STREAM_PREAMBLE_LEN} bytes",
                bytes.len()
            ));
        }
        if &bytes[0..4] != STREAM_MAGIC {
            return Err("bad replication stream magic".into());
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != STREAM_VERSION {
            return Err(format!(
                "unsupported replication stream version {version} (expected {STREAM_VERSION})"
            ));
        }
        let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        Ok(StreamPreamble {
            primary: flags & FLAG_PRIMARY != 0,
            snapshot: SnapshotId {
                len: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
                crc: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
            },
            wal_len: u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
            records: u64::from_le_bytes(bytes[28..36].try_into().unwrap()),
        })
    }
}

/// Splits a replication body into its preamble and the payload after it.
pub fn split_preamble(body: &[u8]) -> Result<(StreamPreamble, &[u8]), String> {
    let preamble = StreamPreamble::decode(body)?;
    Ok((preamble, &body[STREAM_PREAMBLE_LEN..]))
}

// ---------------------------------------------------------------------
// Roles and the hub
// ---------------------------------------------------------------------

/// The serving role of this `frostd` process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serves reads and writes; streams its WAL to replicas.
    Primary,
    /// Serves reads only; tails a primary's WAL. Writes get `503` plus
    /// a `Frost-Primary` hint.
    Replica,
}

/// The durable position this node last published: snapshot epoch, WAL
/// byte length, and frame count — plus the highest offset any replica
/// has proven durable by polling past it (semi-sync replication).
#[derive(Debug, Clone, Copy)]
struct HubMeta {
    snapshot: SnapshotId,
    wal_len: u64,
    records: u64,
    /// Highest `?from=` offset a replica has polled with under the
    /// current snapshot epoch. A replica only asks for bytes past
    /// `from` once everything before `from` is durable locally, so
    /// this doubles as a replication acknowledgement watermark.
    replica_durable: u64,
}

/// Replication-lag as seen from a replica: how far behind the primary
/// it is in records, bytes, and wall-clock time since it was last fully
/// caught up. All zero on a primary.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicationLag {
    /// Frames the primary has durably written that this node has not.
    pub records: u64,
    /// WAL bytes the primary has durably written that this node has not.
    pub bytes: u64,
    /// Milliseconds since this node last matched the primary's WAL
    /// length (since process start if it never has). Oscillates between
    /// 0 and roughly the poll interval on a healthy idle replica.
    pub ms: u64,
}

/// Shared replication state. One per server, reachable from the HTTP
/// handlers (long-poll wakeup, semi-sync acks, metrics) and from the
/// replica apply thread (position/connectivity reporting).
pub struct ReplicationHub {
    /// 0 = primary, 1 = replica.
    role: AtomicU8,
    /// Authority to point writers at from a replica's `503`.
    primary_hint: Mutex<Option<String>>,
    /// This node's published durable position; guarded by one mutex so
    /// snapshot epoch and WAL length always move together.
    meta: Mutex<HubMeta>,
    /// Notified on `publish` — wakes long-polling replicas.
    data: Condvar,
    /// Notified on `note_poll` — wakes semi-sync writers.
    ack: Condvar,
    /// Replica side: the primary's position from the last preamble.
    primary_wal_len: AtomicU64,
    primary_records: AtomicU64,
    /// Replica side: whether the last poll of the primary succeeded.
    connected: AtomicBool,
    /// Replica side: when this node last matched the primary's WAL
    /// length. `None` until first catch-up.
    caught_up_at: Mutex<Option<Instant>>,
    started: Instant,
    polls: AtomicU64,
    streamed_bytes: AtomicU64,
    sync_timeouts: AtomicU64,
}

fn lock_meta<'a>(meta: &'a Mutex<HubMeta>) -> MutexGuard<'a, HubMeta> {
    meta.lock().unwrap_or_else(|e| e.into_inner())
}

impl ReplicationHub {
    /// A hub starting at the given durable position, in primary role.
    pub fn new(snapshot: SnapshotId, wal_len: u64, records: u64) -> ReplicationHub {
        ReplicationHub {
            role: AtomicU8::new(0),
            primary_hint: Mutex::new(None),
            meta: Mutex::new(HubMeta {
                snapshot,
                wal_len,
                records,
                replica_durable: 0,
            }),
            data: Condvar::new(),
            ack: Condvar::new(),
            primary_wal_len: AtomicU64::new(0),
            primary_records: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            caught_up_at: Mutex::new(None),
            started: Instant::now(),
            polls: AtomicU64::new(0),
            streamed_bytes: AtomicU64::new(0),
            sync_timeouts: AtomicU64::new(0),
        }
    }

    /// The current role.
    pub fn role(&self) -> Role {
        if self.role.load(Ordering::SeqCst) == 0 {
            Role::Primary
        } else {
            Role::Replica
        }
    }

    /// Flips the role. Promotion sets this *first* so the apply loop
    /// and write path observe the change before any state mutation.
    pub fn set_role(&self, role: Role) {
        let v = match role {
            Role::Primary => 0,
            Role::Replica => 1,
        };
        self.role.store(v, Ordering::SeqCst);
    }

    /// True when this node accepts writes.
    pub fn is_primary(&self) -> bool {
        self.role() == Role::Primary
    }

    /// The authority replicas advertise in `Frost-Primary`.
    pub fn primary_hint(&self) -> Option<String> {
        self.primary_hint
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Records the authority of the primary this node follows.
    pub fn set_primary_hint(&self, hint: Option<String>) {
        *self.primary_hint.lock().unwrap_or_else(|e| e.into_inner()) = hint;
    }

    /// Publishes a new durable position: called after every append,
    /// after compaction, and after a replica applies a record. Wakes
    /// long-pollers and semi-sync waiters. A snapshot-epoch change
    /// resets the replica-durable watermark — offsets from the old
    /// epoch mean nothing in the new one.
    pub fn publish(&self, snapshot: SnapshotId, wal_len: u64, records: u64) {
        let mut meta = lock_meta(&self.meta);
        if meta.snapshot != snapshot {
            meta.replica_durable = 0;
        }
        meta.snapshot = snapshot;
        meta.wal_len = wal_len;
        meta.records = records;
        drop(meta);
        self.data.notify_all();
        self.ack.notify_all();
    }

    /// The last published durable position.
    pub fn position(&self) -> (SnapshotId, u64, u64) {
        let meta = lock_meta(&self.meta);
        (meta.snapshot, meta.wal_len, meta.records)
    }

    /// Long-poll support: blocks until the published position moves
    /// past (`snapshot`, `from`) or `max_wait` elapses, returning the
    /// position current at wakeup. A caller whose snapshot no longer
    /// matches returns immediately — it needs to re-bootstrap, not
    /// wait.
    pub fn wait_for_data(
        &self,
        from: u64,
        snapshot: SnapshotId,
        max_wait: Duration,
    ) -> (SnapshotId, u64, u64) {
        let deadline = Instant::now() + max_wait;
        let mut meta = lock_meta(&self.meta);
        loop {
            if meta.wal_len != from || meta.snapshot != snapshot {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .data
                .wait_timeout(meta, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            meta = guard;
            if timeout.timed_out() {
                break;
            }
        }
        (meta.snapshot, meta.wal_len, meta.records)
    }

    /// Records a replica poll at `from` under `snapshot`: everything
    /// before `from` is durable on the replica, so advance the ack
    /// watermark and wake semi-sync writers.
    pub fn note_poll(&self, snapshot: SnapshotId, from: u64) {
        self.polls.fetch_add(1, Ordering::Relaxed);
        let mut meta = lock_meta(&self.meta);
        if meta.snapshot == snapshot && from > meta.replica_durable {
            meta.replica_durable = from;
            drop(meta);
            self.ack.notify_all();
        }
    }

    /// Semi-sync write support: blocks until a replica proves `target`
    /// durable (or the snapshot epoch changes — compaction folded the
    /// write into the snapshot, which replicas bootstrap from whole).
    /// Returns `false` on timeout.
    pub fn wait_for_ack(&self, snapshot: SnapshotId, target: u64, max_wait: Duration) -> bool {
        let deadline = Instant::now() + max_wait;
        let mut meta = lock_meta(&self.meta);
        loop {
            if meta.snapshot != snapshot || meta.replica_durable >= target {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                drop(meta);
                self.sync_timeouts.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let (guard, _) = self
                .ack
                .wait_timeout(meta, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            meta = guard;
        }
    }

    /// Replica side: records the primary position from a preamble.
    pub fn set_primary_position(&self, wal_len: u64, records: u64) {
        self.primary_wal_len.store(wal_len, Ordering::Relaxed);
        self.primary_records.store(records, Ordering::Relaxed);
    }

    /// Replica side: marks the primary reachable or not.
    pub fn set_connected(&self, connected: bool) {
        self.connected.store(connected, Ordering::Relaxed);
    }

    /// Whether the last poll of the primary succeeded (replica only).
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// Replica side: this node's WAL length just matched the primary's.
    pub fn note_caught_up(&self) {
        *self.caught_up_at.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
    }

    /// Current replication lag. Zero in every dimension on a primary.
    pub fn lag(&self) -> ReplicationLag {
        if self.is_primary() {
            return ReplicationLag::default();
        }
        let (wal_len, records) = {
            let meta = lock_meta(&self.meta);
            (meta.wal_len, meta.records)
        };
        let bytes = self
            .primary_wal_len
            .load(Ordering::Relaxed)
            .saturating_sub(wal_len);
        let records = self
            .primary_records
            .load(Ordering::Relaxed)
            .saturating_sub(records);
        let ms = match *self.caught_up_at.lock().unwrap_or_else(|e| e.into_inner()) {
            Some(at) => at.elapsed().as_millis() as u64,
            None => self.started.elapsed().as_millis() as u64,
        };
        ReplicationLag { records, bytes, ms }
    }

    /// Total `/replication/wal` polls served.
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Total WAL payload bytes streamed to replicas.
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes.load(Ordering::Relaxed)
    }

    /// Accounts payload bytes streamed to a replica.
    pub fn add_streamed(&self, n: u64) {
        self.streamed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Semi-sync writes that timed out waiting for a replica ack.
    pub fn sync_timeouts(&self) -> u64 {
        self.sync_timeouts.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Replica apply loop
// ---------------------------------------------------------------------

/// How long the replica asks the primary to hold an empty poll open.
pub const REPLICA_POLL_WAIT_MS: u64 = 1000;
/// Read timeout for a poll — must exceed the held-open window.
const POLL_TIMEOUT: Duration = Duration::from_secs(15);
/// Pause between reconnect attempts when the primary is unreachable.
const RECONNECT_PAUSE: Duration = Duration::from_millis(250);
/// Read timeout for a full snapshot fetch.
const SNAPSHOT_TIMEOUT: Duration = Duration::from_secs(60);

/// Tails `primary`'s WAL and applies every record through the durable
/// path until shutdown or promotion. Runs on its own thread; transient
/// network failures retry forever (the replica keeps serving reads,
/// with lag growing and `/readyz` eventually failing), while a local
/// apply failure is fatal to replication — continuing would silently
/// diverge.
pub fn run_replica(state: &ServerState, primary: &str, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) && state.hub().role() == Role::Replica {
        let hub = state.hub();
        let (snapshot, from) = state.replication_position();
        let path = format!(
            "/replication/wal?from={from}&wait_ms={REPLICA_POLL_WAIT_MS}&snap_len={}&snap_crc={}",
            snapshot.len, snapshot.crc
        );
        let (status, body) = match http_get_binary(primary, &path, POLL_TIMEOUT) {
            Ok(reply) => reply,
            Err(_) => {
                hub.set_connected(false);
                sleep_interruptible(shutdown, RECONNECT_PAUSE);
                continue;
            }
        };
        if status != 200 {
            hub.set_connected(false);
            sleep_interruptible(shutdown, RECONNECT_PAUSE);
            continue;
        }
        let (preamble, frames) = match split_preamble(&body) {
            Ok(split) => split,
            Err(err) => {
                eprintln!("frostd: bad replication reply from {primary}: {err}");
                hub.set_connected(false);
                sleep_interruptible(shutdown, RECONNECT_PAUSE);
                continue;
            }
        };
        hub.set_connected(true);
        hub.set_primary_position(preamble.wal_len, preamble.records);

        if preamble.snapshot != snapshot || from > preamble.wal_len {
            // The primary compacted (new snapshot epoch) or our offset
            // is from a different history: discard and re-bootstrap.
            if let Err(err) = rebootstrap(state, primary) {
                eprintln!("frostd: replica re-bootstrap from {primary} failed: {err}");
                hub.set_connected(false);
                sleep_interruptible(shutdown, RECONNECT_PAUSE);
            }
            continue;
        }

        match wal::scan_stream(frames) {
            Ok(scan) => {
                for op in &scan.ops {
                    if shutdown.load(Ordering::SeqCst) || hub.role() != Role::Replica {
                        return;
                    }
                    if let Err(err) = state.apply_replicated(op) {
                        eprintln!(
                            "frostd: replica apply failed, replication stalled \
                             (restart to resume): {err}"
                        );
                        return;
                    }
                }
            }
            Err(err) => {
                // A complete frame failed its CRC: the transport gave us
                // garbage. Re-bootstrapping from the snapshot is always
                // safe and gets us back to a verified state.
                eprintln!("frostd: corrupt replication frame from {primary}: {err}");
                if let Err(err) = rebootstrap(state, primary) {
                    eprintln!("frostd: replica re-bootstrap from {primary} failed: {err}");
                    hub.set_connected(false);
                    sleep_interruptible(shutdown, RECONNECT_PAUSE);
                }
                continue;
            }
        }

        let (_, applied) = state.replication_position();
        if applied >= preamble.wal_len {
            hub.note_caught_up();
        }
    }
}

/// Fetches the primary's snapshot, verifies it against its preamble,
/// and swaps it in as this node's new baseline.
fn rebootstrap(state: &ServerState, primary: &str) -> io::Result<()> {
    let (status, body) = http_get_binary(primary, "/replication/snapshot", SNAPSHOT_TIMEOUT)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "snapshot fetch returned HTTP {status}"
        )));
    }
    let (preamble, snapshot_bytes) = split_preamble(&body).map_err(io::Error::other)?;
    if wal::snapshot_id(snapshot_bytes) != preamble.snapshot {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot bytes do not match their advertised identity",
        ));
    }
    state.install_snapshot(snapshot_bytes)
}

/// Cold-start bootstrap: fetches the primary's snapshot and writes it
/// to `path` (tmp + fsync + rename) so `DurableStore::open` can start
/// from the primary's baseline. Retries until `max_wait` elapses so a
/// replica can be started before its primary.
pub fn bootstrap_snapshot(primary: &str, path: &Path, max_wait: Duration) -> io::Result<()> {
    let deadline = Instant::now() + max_wait;
    loop {
        match try_bootstrap(primary, path) {
            Ok(()) => return Ok(()),
            Err(err) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::other(format!(
                        "bootstrap from {primary} failed after {max_wait:?}: {err}"
                    )));
                }
                thread::sleep(Duration::from_millis(500));
            }
        }
    }
}

fn try_bootstrap(primary: &str, path: &Path) -> io::Result<()> {
    let (status, body) = http_get_binary(primary, "/replication/snapshot", SNAPSHOT_TIMEOUT)?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "snapshot fetch returned HTTP {status}"
        )));
    }
    let (preamble, snapshot_bytes) = split_preamble(&body).map_err(io::Error::other)?;
    if wal::snapshot_id(snapshot_bytes) != preamble.snapshot {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot bytes do not match their advertised identity",
        ));
    }
    let tmp = path.with_extension("bootstrap.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(snapshot_bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn sleep_interruptible(shutdown: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        thread::sleep((deadline - now).min(Duration::from_millis(50)));
    }
}

// ---------------------------------------------------------------------
// Minimal binary HTTP client
// ---------------------------------------------------------------------

/// One-shot binary-safe GET. The main [`crate::client`] keeps its text
/// convenience surface; replication needs exact bytes, `Connection:
/// close` framing, and nothing else.
pub(crate) fn http_get_binary(
    authority: &str,
    path: &str,
    timeout: Duration,
) -> io::Result<(u16, Vec<u8>)> {
    use std::net::ToSocketAddrs;
    let addr = authority.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot resolve {authority}"),
        )
    })?;
    // A bounded connect keeps the replica loop (and shutdown joins)
    // responsive when the primary is down.
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {authority}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_http_response(&raw)
}

fn parse_http_response(raw: &[u8]) -> io::Result<(u16, Vec<u8>)> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "no header terminator in reply",
            )
        })?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let mut content_length: Option<usize> = None;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let body = &raw[head_end..];
    match content_length {
        Some(n) if body.len() >= n => Ok((status, body[..n].to_vec())),
        Some(n) => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("body truncated: {} of {n} bytes", body.len()),
        )),
        None => Ok((status, body.to_vec())),
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn snap(len: u64, crc: u32) -> SnapshotId {
        SnapshotId { len, crc }
    }

    #[test]
    fn preamble_roundtrips_through_its_wire_form() {
        let preamble = StreamPreamble {
            primary: true,
            snapshot: snap(1234, 0xDEAD_BEEF),
            wal_len: 24 + 99,
            records: 7,
        };
        let bytes = preamble.encode();
        assert_eq!(bytes.len(), STREAM_PREAMBLE_LEN);
        assert_eq!(StreamPreamble::decode(&bytes).unwrap(), preamble);

        let replica = StreamPreamble {
            primary: false,
            ..preamble
        };
        assert_eq!(StreamPreamble::decode(&replica.encode()).unwrap(), replica);
    }

    #[test]
    fn preamble_decode_rejects_garbage() {
        let good = StreamPreamble {
            primary: true,
            snapshot: snap(10, 1),
            wal_len: 24,
            records: 0,
        }
        .encode();

        assert!(StreamPreamble::decode(&good[..STREAM_PREAMBLE_LEN - 1]).is_err());

        let mut bad_magic = good;
        bad_magic[0] ^= 0xFF;
        assert!(StreamPreamble::decode(&bad_magic).is_err());

        let mut bad_version = good;
        bad_version[4] = 0xFE;
        assert!(StreamPreamble::decode(&bad_version).is_err());
    }

    #[test]
    fn ack_wait_returns_once_a_poll_reaches_the_target() {
        let id = snap(100, 42);
        let hub = Arc::new(ReplicationHub::new(id, 24 + 50, 3));

        // Target not yet durable anywhere: times out.
        assert!(!hub.wait_for_ack(id, 24 + 50, Duration::from_millis(30)));
        assert_eq!(hub.sync_timeouts(), 1);

        // A poll at the target offset proves durability and wakes us.
        let waker = Arc::clone(&hub);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            waker.note_poll(id, 24 + 50);
        });
        assert!(hub.wait_for_ack(id, 24 + 50, Duration::from_secs(5)));
        handle.join().unwrap();
        assert_eq!(hub.polls(), 1);
    }

    #[test]
    fn ack_wait_unblocks_when_compaction_changes_the_epoch() {
        let id = snap(100, 42);
        let hub = Arc::new(ReplicationHub::new(id, 24 + 50, 3));
        let waker = Arc::clone(&hub);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            waker.publish(snap(200, 43), 24, 0);
        });
        // The write we were waiting on got folded into a new snapshot:
        // replicas will bootstrap from it whole, so the wait succeeds.
        assert!(hub.wait_for_ack(id, 24 + 50, Duration::from_secs(5)));
        handle.join().unwrap();
    }

    #[test]
    fn data_wait_returns_early_on_publish_or_epoch_change() {
        let id = snap(100, 42);
        let hub = Arc::new(ReplicationHub::new(id, 24, 0));

        // Position already past `from`: returns immediately.
        let (_, len, _) = hub.wait_for_data(0, id, Duration::from_secs(5));
        assert_eq!(len, 24);

        // Caller's snapshot is stale: returns immediately too.
        let start = Instant::now();
        hub.wait_for_data(24, snap(9, 9), Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));

        let waker = Arc::clone(&hub);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            waker.publish(id, 24 + 10, 1);
        });
        let (got_snap, got_len, got_records) = hub.wait_for_data(24, id, Duration::from_secs(5));
        assert_eq!((got_snap, got_len, got_records), (id, 24 + 10, 1));
        handle.join().unwrap();
    }

    #[test]
    fn lag_is_zero_on_a_primary_and_tracks_position_on_a_replica() {
        let id = snap(100, 42);
        let hub = ReplicationHub::new(id, 24, 0);
        assert_eq!(hub.lag().bytes, 0);

        hub.set_role(Role::Replica);
        hub.set_primary_position(24 + 80, 4);
        hub.publish(id, 24 + 30, 1);
        let lag = hub.lag();
        assert_eq!(lag.bytes, 50);
        assert_eq!(lag.records, 3);

        hub.set_role(Role::Primary);
        assert_eq!(hub.lag().bytes, 0);
    }
}
