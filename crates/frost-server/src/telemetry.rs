//! The serving layer's telemetry: per-request lifecycle traces, the
//! always-on latency histograms behind `GET /metrics`, and the
//! last-N trace ring behind `GET /debug/traces`.
//!
//! # Stages
//!
//! A request is stamped as it moves through the pipeline, in this
//! order (stages that do not apply to a path are simply absent):
//!
//! | stage           | stamped when                                             |
//! |-----------------|----------------------------------------------------------|
//! | `accepted`      | the deadline clock starts: connection admission for the first request, arrival of its own first byte for pipelined successors |
//! | `head_complete` | the event loop's parser yields the complete request      |
//! | `admitted`      | the request enters the bounded dispatch queue            |
//! | `cache_probe`   | the worker probed the serialized-response cache tier     |
//! | `gate_acquired` | the worker obtained its class concurrency permit (compute/write only) |
//! | `evaluated`     | the store computation (or write) finished                |
//! | `serialized`    | the full response (head + body + `ETag` revalidation) is built |
//! | `first_byte`    | the event loop wrote the first response byte             |
//! | `last_byte`     | the last response byte entered the socket buffer         |
//!
//! The stage deltas telescope: the per-stage durations of one trace
//! sum *exactly* to its end-to-end duration (`last_byte − accepted`),
//! which the loopback tests pin.
//!
//! # Cost
//!
//! Recording is deliberately cheap: stamping shares `Instant::now()`
//! calls between adjacent stages (the hot cached path performs three
//! beyond what the deadline machinery already takes), finishing a
//! trace is a handful of relaxed `fetch_add`s into [`Histogram`]
//! buckets, and the trace ring claims its slot with one atomic
//! `fetch_add` (the slot payload swap is guarded by an uncontended
//! per-slot mutex, since traces carry strings). Setting
//! [`ServeOptions::telemetry`](crate::ServeOptions::telemetry) to
//! `false` skips tracing entirely — the bench harness gates the
//! enabled-vs-disabled difference at ≤ 5 % of hot-path p50.

use frost_storage::telemetry::{Histogram, WalStats};
use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of the `/debug/traces` ring
/// ([`ServeOptions::trace_ring`](crate::ServeOptions::trace_ring)).
pub const DEFAULT_TRACE_RING: usize = 256;

/// Resolution of the server-side histograms: `2^5` sub-buckets per
/// power of two, ≈3 % relative error, ~15 KB per histogram.
const SERVER_SUB_BITS: u32 = 5;

// ---------------------------------------------------------------------
// Stages and endpoint labels
// ---------------------------------------------------------------------

/// A request lifecycle stage (see the [module docs](self) glossary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Accepted = 0,
    HeadComplete = 1,
    Admitted = 2,
    CacheProbe = 3,
    GateAcquired = 4,
    Evaluated = 5,
    Serialized = 6,
    FirstByte = 7,
    LastByte = 8,
}

/// Number of [`Stage`]s.
pub const STAGE_COUNT: usize = 9;

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accepted,
        Stage::HeadComplete,
        Stage::Admitted,
        Stage::CacheProbe,
        Stage::GateAcquired,
        Stage::Evaluated,
        Stage::Serialized,
        Stage::FirstByte,
        Stage::LastByte,
    ];

    /// The label value used in `/metrics` and `/debug/traces`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accepted => "accepted",
            Stage::HeadComplete => "head_complete",
            Stage::Admitted => "admitted",
            Stage::CacheProbe => "cache_probe",
            Stage::GateAcquired => "gate_acquired",
            Stage::Evaluated => "evaluated",
            Stage::Serialized => "serialized",
            Stage::FirstByte => "first_byte",
            Stage::LastByte => "last_byte",
        }
    }
}

/// The bounded endpoint label set request metrics are keyed by. Every
/// request maps to exactly one label (unknown paths fall into
/// [`Endpoint::Other`]), and each label implies one cost class — so
/// `endpoint × class` label pairs stay bounded no matter what clients
/// send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Datasets = 0,
    Experiments = 1,
    Profile = 2,
    Matrix = 3,
    /// `/metrics?experiment=<E>` — the evaluation-metrics API (the
    /// bare `/metrics` is [`Endpoint::Prometheus`]).
    Metrics = 4,
    Diagram = 5,
    Compare = 6,
    Venn = 7,
    ClusterMetrics = 8,
    Ratios = 9,
    Errors = 10,
    Quality = 11,
    Stats = 12,
    Healthz = 13,
    Readyz = 14,
    /// `GET /metrics` without an `experiment` parameter: the
    /// Prometheus exposition.
    Prometheus = 15,
    /// `GET /debug/traces`.
    Traces = 16,
    /// The test-only `/debug/*` load endpoints.
    Debug = 17,
    /// `POST /experiments` (CSV import).
    Import = 18,
    /// `DELETE /experiments/<name>`.
    Delete = 19,
    /// `POST /snapshot/save`.
    Snapshot = 20,
    Other = 21,
    /// `GET /replication/wal` — the replica long-poll WAL stream.
    ReplicationWal = 22,
    /// `GET /replication/snapshot` — the replica bootstrap download.
    ReplicationSnapshot = 23,
    /// `POST /replication/promote` — the explicit failover trigger.
    Promote = 24,
}

/// Number of [`Endpoint`] labels.
pub const ENDPOINT_COUNT: usize = 25;

impl Endpoint {
    /// Every label, in index order.
    pub const ALL: [Endpoint; ENDPOINT_COUNT] = [
        Endpoint::Datasets,
        Endpoint::Experiments,
        Endpoint::Profile,
        Endpoint::Matrix,
        Endpoint::Metrics,
        Endpoint::Diagram,
        Endpoint::Compare,
        Endpoint::Venn,
        Endpoint::ClusterMetrics,
        Endpoint::Ratios,
        Endpoint::Errors,
        Endpoint::Quality,
        Endpoint::Stats,
        Endpoint::Healthz,
        Endpoint::Readyz,
        Endpoint::Prometheus,
        Endpoint::Traces,
        Endpoint::Debug,
        Endpoint::Import,
        Endpoint::Delete,
        Endpoint::Snapshot,
        Endpoint::Other,
        Endpoint::ReplicationWal,
        Endpoint::ReplicationSnapshot,
        Endpoint::Promote,
    ];

    /// Maps a request line to its label without allocating.
    pub fn from_request(method: &str, target: &str) -> Endpoint {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        match method {
            "GET" => match path {
                "/datasets" => Endpoint::Datasets,
                "/experiments" => Endpoint::Experiments,
                "/profile" => Endpoint::Profile,
                "/matrix" => Endpoint::Matrix,
                "/metrics" if query.contains("experiment") => Endpoint::Metrics,
                "/metrics" => Endpoint::Prometheus,
                "/diagram" => Endpoint::Diagram,
                "/compare" => Endpoint::Compare,
                "/venn" => Endpoint::Venn,
                "/cluster-metrics" => Endpoint::ClusterMetrics,
                "/ratios" => Endpoint::Ratios,
                "/errors" => Endpoint::Errors,
                "/quality" => Endpoint::Quality,
                "/stats" => Endpoint::Stats,
                "/healthz" => Endpoint::Healthz,
                "/readyz" => Endpoint::Readyz,
                "/debug/traces" => Endpoint::Traces,
                "/replication/wal" => Endpoint::ReplicationWal,
                "/replication/snapshot" => Endpoint::ReplicationSnapshot,
                p if p.starts_with("/debug/") => Endpoint::Debug,
                _ => Endpoint::Other,
            },
            "POST" => match path {
                "/experiments" => Endpoint::Import,
                "/snapshot/save" => Endpoint::Snapshot,
                "/replication/promote" => Endpoint::Promote,
                _ => Endpoint::Other,
            },
            "DELETE" => Endpoint::Delete,
            _ => Endpoint::Other,
        }
    }

    /// The label value in `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Datasets => "datasets",
            Endpoint::Experiments => "experiments",
            Endpoint::Profile => "profile",
            Endpoint::Matrix => "matrix",
            Endpoint::Metrics => "metrics",
            Endpoint::Diagram => "diagram",
            Endpoint::Compare => "compare",
            Endpoint::Venn => "venn",
            Endpoint::ClusterMetrics => "cluster_metrics",
            Endpoint::Ratios => "ratios",
            Endpoint::Errors => "errors",
            Endpoint::Quality => "quality",
            Endpoint::Stats => "stats",
            Endpoint::Healthz => "healthz",
            Endpoint::Readyz => "readyz",
            Endpoint::Prometheus => "prometheus",
            Endpoint::Traces => "traces",
            Endpoint::Debug => "debug",
            Endpoint::Import => "import",
            Endpoint::Delete => "delete",
            Endpoint::Snapshot => "snapshot",
            Endpoint::Other => "other",
            Endpoint::ReplicationWal => "replication_wal",
            Endpoint::ReplicationSnapshot => "replication_snapshot",
            Endpoint::Promote => "promote",
        }
    }

    /// The cost class this endpoint routes to (mirrors the server's
    /// `classify`) — the second metric label.
    pub fn class_name(self) -> &'static str {
        match self {
            Endpoint::Compare | Endpoint::Diagram | Endpoint::Venn | Endpoint::Debug => "compute",
            Endpoint::Import | Endpoint::Delete | Endpoint::Snapshot | Endpoint::Promote => "write",
            _ => "cached",
        }
    }
}

// ---------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------

/// One request's lifecycle stamps, threaded event loop → worker →
/// event loop alongside the request itself. Stamps are `Cell`s — the
/// trace is only ever touched by the thread currently owning the
/// request, so no atomics are needed — and a stage's first stamp wins
/// (re-stamping is a no-op), which lets the write path stamp
/// `first_byte`/`last_byte` unconditionally on completion.
pub struct Trace {
    endpoint: Endpoint,
    method: String,
    target: String,
    status: Cell<u16>,
    stamps: [Cell<Option<Instant>>; STAGE_COUNT],
}

impl Trace {
    /// Starts a trace at `accepted` (the request's deadline clock).
    pub fn begin(method: &str, target: &str, accepted: Instant) -> Box<Trace> {
        let trace = Box::new(Trace {
            endpoint: Endpoint::from_request(method, target),
            method: method.to_string(),
            target: target.to_string(),
            status: Cell::new(0),
            stamps: Default::default(),
        });
        trace.stamps[Stage::Accepted as usize].set(Some(accepted));
        trace
    }

    /// Stamps `stage` at `now` unless it was already stamped.
    pub fn stamp_at(&self, stage: Stage, now: Instant) {
        let slot = &self.stamps[stage as usize];
        if slot.get().is_none() {
            slot.set(Some(now));
        }
    }

    /// Stamps `stage` at the current instant (first stamp wins).
    pub fn stamp(&self, stage: Stage) {
        self.stamp_at(stage, Instant::now());
    }

    /// Records the response status (the last call wins — `ETag`
    /// revalidation may turn a `200` into a `304` after routing).
    pub fn set_status(&self, status: u16) {
        self.status.set(status);
    }

    /// The endpoint label derived from the request line.
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint
    }
}

/// A finished trace as kept in the ring: stage *durations* (deltas
/// between consecutive present stamps, which telescope to `total`).
struct FinishedTrace {
    seq: u64,
    endpoint: Endpoint,
    method: String,
    target: String,
    status: u16,
    slow: bool,
    total: Duration,
    stages: Vec<(Stage, Duration)>,
}

impl FinishedTrace {
    fn to_json(&self) -> Value {
        let stages: Vec<Value> = self
            .stages
            .iter()
            .map(|(stage, d)| {
                Value::object([
                    ("stage".to_string(), Value::from(stage.name())),
                    ("ns".to_string(), Value::from(d.as_nanos() as u64)),
                ])
            })
            .collect();
        Value::object([
            ("seq".to_string(), Value::from(self.seq)),
            ("endpoint".to_string(), Value::from(self.endpoint.name())),
            ("class".to_string(), Value::from(self.endpoint.class_name())),
            ("method".to_string(), Value::from(self.method.as_str())),
            ("target".to_string(), Value::from(self.target.as_str())),
            ("status".to_string(), Value::from(u64::from(self.status))),
            ("slow".to_string(), Value::from(self.slow)),
            (
                "total_ns".to_string(),
                Value::from(self.total.as_nanos() as u64),
            ),
            ("stages".to_string(), Value::Array(stages)),
        ])
    }
}

/// The last-N trace ring: the slot index is claimed with one atomic
/// `fetch_add` (no lock, no contention point), and only the claimed
/// slot's payload swap takes that slot's own mutex — two writers
/// contend only if the ring wraps fully between their claims.
struct TraceRing {
    slots: Box<[Mutex<Option<FinishedTrace>>]>,
    head: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: FinishedTrace) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock() = Some(FinishedTrace { seq, ..trace });
    }

    /// The retained traces, most recent first.
    fn collect(&self) -> Vec<Value> {
        let mut traces: Vec<(u64, Value)> = self
            .slots
            .iter()
            .filter_map(|slot| {
                let slot = slot.lock();
                slot.as_ref().map(|t| (t.seq, t.to_json()))
            })
            .collect();
        traces.sort_by_key(|t| std::cmp::Reverse(t.0));
        traces.into_iter().map(|(_, v)| v).collect()
    }
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// Everything the telemetry layer accumulates, owned by
/// [`ServerState`](crate::ServerState) and shared with the event loops
/// and workers.
pub struct Telemetry {
    enabled: AtomicBool,
    /// Slow-request threshold in nanoseconds; `0` disables the log.
    slow_ns: AtomicU64,
    ring: RwLock<TraceRing>,
    /// Completed responses per endpoint (incremented at `last_byte`).
    requests: Vec<AtomicU64>,
    slow_total: AtomicU64,
    /// End-to-end latency per endpoint (`accepted` → `last_byte`).
    e2e: Vec<Histogram>,
    /// Per-stage durations, indexed by the stage each interval *ends*
    /// at (`stage[Accepted]` is unused — it has no predecessor).
    stage: Vec<Histogram>,
    /// Wall time spent inside each `poll(2)` call.
    poll_dwell: Histogram,
    /// Events handled per event-loop wake (fresh connections +
    /// completions + readiness firings).
    dispatch_batch: Histogram,
    open_connections: AtomicI64,
    wal: Arc<WalStats>,
}

impl Telemetry {
    /// A registry with default settings (enabled, 256-slot ring, slow
    /// log off) recording WAL timings into `wal`.
    pub fn new(wal: Arc<WalStats>) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            slow_ns: AtomicU64::new(0),
            ring: RwLock::new(TraceRing::new(DEFAULT_TRACE_RING)),
            requests: (0..ENDPOINT_COUNT).map(|_| AtomicU64::new(0)).collect(),
            slow_total: AtomicU64::new(0),
            e2e: (0..ENDPOINT_COUNT)
                .map(|_| Histogram::new(SERVER_SUB_BITS))
                .collect(),
            stage: (0..STAGE_COUNT)
                .map(|_| Histogram::new(SERVER_SUB_BITS))
                .collect(),
            poll_dwell: Histogram::new(SERVER_SUB_BITS),
            dispatch_batch: Histogram::new(SERVER_SUB_BITS),
            open_connections: AtomicI64::new(0),
            wal,
        }
    }

    /// Applies the serve-time options (called once per `serve_with`).
    pub(crate) fn configure(&self, enabled: bool, slow: Option<Duration>, ring: usize) {
        self.enabled.store(enabled, Ordering::Release);
        let slow_ns = slow
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        self.slow_ns.store(slow_ns, Ordering::Release);
        let ring = ring.max(1);
        if self.ring.read().slots.len() != ring {
            *self.ring.write() = TraceRing::new(ring);
        }
    }

    /// Whether request tracing is on (one relaxed load — the event
    /// loop checks this before allocating anything).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Connections currently open on the event loops (the
    /// `open_connections` gauge; accepts that were shed before
    /// adoption never count).
    pub fn open_connections(&self) -> i64 {
        self.open_connections.load(Ordering::Relaxed).max(0)
    }

    /// Completed responses, summed over every endpoint.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Completed responses for one endpoint label.
    pub fn requests_for(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint as usize].load(Ordering::Relaxed)
    }

    /// Requests that exceeded the slow-request threshold.
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// The end-to-end latency histogram of one endpoint.
    pub fn e2e_histogram(&self, endpoint: Endpoint) -> &Histogram {
        &self.e2e[endpoint as usize]
    }

    /// The duration histogram of the interval ending at `stage`.
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stage[stage as usize]
    }

    /// The poll-dwell histogram (time inside `poll(2)`).
    pub fn poll_dwell(&self) -> &Histogram {
        &self.poll_dwell
    }

    /// The dispatch-batch-size histogram (events per loop wake).
    pub fn dispatch_batch(&self) -> &Histogram {
        &self.dispatch_batch
    }

    /// The WAL append/fsync histograms.
    pub fn wal(&self) -> &WalStats {
        &self.wal
    }

    pub(crate) fn note_poll_dwell(&self, dwell: Duration) {
        self.poll_dwell.record_duration(dwell);
    }

    pub(crate) fn note_dispatch_batch(&self, events: u64) {
        self.dispatch_batch.record(events);
    }

    /// Finishes a trace once its last response byte entered the
    /// socket: bumps the endpoint's request counter, records the
    /// end-to-end and per-stage histograms, pushes the trace into the
    /// ring, and emits the structured slow-request line when the
    /// configured threshold is exceeded.
    pub(crate) fn finish(&self, trace: Box<Trace>) {
        let endpoint = trace.endpoint;
        self.requests[endpoint as usize].fetch_add(1, Ordering::Relaxed);
        let stamps = &trace.stamps;
        let Some(accepted) = stamps[Stage::Accepted as usize].get() else {
            return; // loop-local error response: counted, not traced
        };
        let mut prev = accepted;
        let mut stages: Vec<(Stage, Duration)> = Vec::with_capacity(STAGE_COUNT - 1);
        for stage in &Stage::ALL[1..] {
            let Some(at) = stamps[*stage as usize].get() else {
                continue;
            };
            let delta = at.saturating_duration_since(prev);
            self.stage[*stage as usize].record_duration(delta);
            stages.push((*stage, delta));
            prev = at;
        }
        // `prev` is now the last present stamp (`last_byte`), so the
        // collected deltas telescope exactly to `total`.
        let total = prev.saturating_duration_since(accepted);
        self.e2e[endpoint as usize].record_duration(total);
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        let slow = slow_ns > 0 && total.as_nanos() as u64 >= slow_ns;
        if slow {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
            log_slow_request(&trace, total, &stages);
        }
        self.ring.read().push(FinishedTrace {
            seq: 0, // assigned by the ring
            endpoint,
            method: trace.method,
            target: trace.target,
            status: trace.status.get(),
            slow,
            total,
            stages,
        });
    }

    /// The `/debug/traces` body: retained traces, most recent first.
    pub fn traces_json(&self) -> Value {
        let ring = self.ring.read();
        Value::object([
            ("ring".to_string(), Value::from(ring.slots.len())),
            ("traces".to_string(), Value::Array(ring.collect())),
        ])
    }
}

/// RAII bump of the `open_connections` gauge, held by each event-loop
/// connection — every way a connection dies (idle sweep, parse error,
/// drain, hard kill, loop exit) drops the `Conn` and with it this
/// guard, so the gauge can never leak.
pub struct OpenConnGuard {
    telemetry: Arc<Telemetry>,
}

impl OpenConnGuard {
    pub(crate) fn new(telemetry: &Arc<Telemetry>) -> Self {
        telemetry.open_connections.fetch_add(1, Ordering::Relaxed);
        Self {
            telemetry: Arc::clone(telemetry),
        }
    }
}

impl Drop for OpenConnGuard {
    fn drop(&mut self) {
        self.telemetry
            .open_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// One structured line per slow request, greppable by key:
/// `frostd: slow-request endpoint=… status=… total_ms=… stages=…`.
fn log_slow_request(trace: &Trace, total: Duration, stages: &[(Stage, Duration)]) {
    let mut breakdown = String::new();
    for (stage, d) in stages {
        if !breakdown.is_empty() {
            breakdown.push(',');
        }
        breakdown.push_str(stage.name());
        breakdown.push(':');
        breakdown.push_str(&format!("{:.3}", d.as_secs_f64() * 1e3));
    }
    eprintln!(
        "frostd: slow-request endpoint={} method={} target={:?} status={} total_ms={:.3} stages={}",
        trace.endpoint.name(),
        trace.method,
        trace.target,
        trace.status.get(),
        total.as_secs_f64() * 1e3,
        breakdown,
    );
}

// ---------------------------------------------------------------------
// Prometheus text exposition helpers
// ---------------------------------------------------------------------

/// Appends a `# HELP` + `# TYPE` family header.
pub(crate) fn write_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Appends one `name{labels} value` sample line (`labels` may be
/// empty; values render integrally when integral).
pub(crate) fn write_sample(out: &mut String, name: &str, labels: &str, value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    if value.fract() == 0.0 && value.abs() < 9e15 {
        out.push_str(&format!("{}", value as i64));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

/// Appends one histogram's `_bucket`/`_sum`/`_count` samples.
/// Recorded values are multiplied by `unit` (pass `1e-9` for
/// nanosecond histograms rendered as seconds, `1.0` for unitless
/// ones). Only non-empty buckets plus the mandatory `+Inf` bucket are
/// emitted — cumulative `le` semantics make that a valid (and
/// compact) exposition.
pub(crate) fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    h: &Histogram,
    unit: f64,
) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        let le = upper as f64 * unit;
        out.push_str(name);
        out.push_str("_bucket{");
        out.push_str(labels);
        out.push_str(sep);
        out.push_str(&format!("le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(name);
    out.push_str("_bucket{");
    out.push_str(labels);
    out.push_str(sep);
    out.push_str(&format!("le=\"+Inf\"}} {}\n", h.count()));
    write_sample(out, &format!("{name}_sum"), labels, h.sum() as f64 * unit);
    write_sample(out, &format!("{name}_count"), labels, h.count() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_cover_the_routing_table() {
        let cases = [
            ("GET", "/datasets", Endpoint::Datasets),
            ("GET", "/metrics?experiment=e1", Endpoint::Metrics),
            ("GET", "/metrics", Endpoint::Prometheus),
            ("GET", "/diagram?experiment=e1&samples=5", Endpoint::Diagram),
            ("GET", "/debug/traces", Endpoint::Traces),
            ("GET", "/debug/sleep?ms=5", Endpoint::Debug),
            ("GET", "/nope", Endpoint::Other),
            ("POST", "/experiments?dataset=d&name=n", Endpoint::Import),
            ("POST", "/snapshot/save", Endpoint::Snapshot),
            ("DELETE", "/experiments/e1", Endpoint::Delete),
            ("PATCH", "/datasets", Endpoint::Other),
        ];
        for (method, target, want) in cases {
            assert_eq!(
                Endpoint::from_request(method, target),
                want,
                "{method} {target}"
            );
        }
        for endpoint in Endpoint::ALL {
            assert!(!endpoint.name().is_empty());
            assert!(matches!(
                endpoint.class_name(),
                "cached" | "compute" | "write"
            ));
        }
    }

    #[test]
    fn stage_deltas_telescope_to_total() {
        let telemetry = Telemetry::new(Arc::default());
        let t0 = Instant::now();
        let trace = Trace::begin("GET", "/datasets", t0);
        trace.stamp_at(Stage::HeadComplete, t0 + Duration::from_micros(10));
        trace.stamp_at(Stage::Admitted, t0 + Duration::from_micros(12));
        trace.stamp_at(Stage::CacheProbe, t0 + Duration::from_micros(40));
        trace.stamp_at(Stage::Serialized, t0 + Duration::from_micros(90));
        trace.stamp_at(Stage::FirstByte, t0 + Duration::from_micros(120));
        trace.stamp_at(Stage::LastByte, t0 + Duration::from_micros(120));
        trace.set_status(200);
        telemetry.finish(trace);
        assert_eq!(telemetry.requests_for(Endpoint::Datasets), 1);
        assert_eq!(telemetry.e2e_histogram(Endpoint::Datasets).count(), 1);
        let traces = telemetry.traces_json();
        let entries = traces.get("traces").and_then(Value::as_array).unwrap();
        assert_eq!(entries.len(), 1);
        let total = entries[0].get("total_ns").and_then(Value::as_f64).unwrap();
        let stage_sum: f64 = entries[0]
            .get("stages")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|s| s.get("ns").and_then(Value::as_f64).unwrap())
            .sum();
        assert_eq!(total, 120_000.0);
        assert_eq!(stage_sum, total, "stage deltas must telescope exactly");
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let telemetry = Telemetry::new(Arc::default());
        telemetry.configure(true, None, 4);
        for i in 0..10 {
            let t0 = Instant::now();
            let trace = Trace::begin("GET", &format!("/stats?i={i}"), t0);
            trace.stamp_at(Stage::LastByte, t0 + Duration::from_micros(i));
            telemetry.finish(trace);
        }
        let traces = telemetry.traces_json();
        let entries = traces.get("traces").and_then(Value::as_array).unwrap();
        assert_eq!(entries.len(), 4);
        let newest = entries[0].get("seq").and_then(Value::as_f64).unwrap();
        assert_eq!(newest, 9.0, "most recent trace first");
    }

    #[test]
    fn open_connection_gauge_balances() {
        let telemetry = Arc::new(Telemetry::new(Arc::default()));
        let a = OpenConnGuard::new(&telemetry);
        let b = OpenConnGuard::new(&telemetry);
        assert_eq!(telemetry.open_connections(), 2);
        drop(a);
        assert_eq!(telemetry.open_connections(), 1);
        drop(b);
        assert_eq!(telemetry.open_connections(), 0);
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let h = Histogram::new(5);
        h.record(10);
        h.record(10);
        h.record(1_000);
        let mut out = String::new();
        write_histogram(&mut out, "x_seconds", "k=\"v\"", &h, 1e-9);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "x_seconds_bucket{k=\"v\",le=\"0.00000001\"} 2");
        assert!(out.contains("le=\"+Inf\"} 3"));
        assert!(out.contains("x_seconds_count{k=\"v\"} 3"));
    }
}
