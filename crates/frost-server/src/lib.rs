//! # frost-server
//!
//! The serving layer of the Frost reproduction: a long-lived,
//! concurrent HTTP/1.1 query server (`frostd`) over the
//! [`BenchmarkStore`](frost_storage::BenchmarkStore).
//!
//! Snowman's front-end speaks a REST API that exposes the back-end's
//! full feature set (Appendix A.4); `frost_storage::api` reproduces
//! that surface as a library. This crate puts it on the wire:
//!
//! * [`http`] — a std-only server (no async runtime, no external
//!   dependencies) serving persistent HTTP/1.1 connections with
//!   request pipelining, exposing every
//!   [`Request`](frost_storage::api::Request) variant as a JSON `GET`
//!   endpoint. Connections live on a readiness-based event loop (a
//!   vendored `poll(2)` shim — idle connections cost a poll slot, not
//!   a thread); only complete parsed requests reach the fixed worker
//!   pool. Two generation-stamped cache tiers
//!   ([`frost_storage::cache`]) sit in front of the derived artifacts:
//!   rendered JSON bodies, and fully serialized response bytes served
//!   by a single `write_all` on the hot path, with content-derived
//!   `ETag` revalidation (`304`) on top.
//! * [`json`] — the canonical JSON rendering of
//!   [`Response`](frost_storage::api::Response) values. Tests pin the
//!   HTTP bodies byte-for-byte against this in-process rendering.
//! * [`client`] — a minimal blocking HTTP client with keep-alive
//!   connection reuse (the `frost get` subcommand and the loopback
//!   tests), with per-request timing capture behind `frost get
//!   --timing`.
//! * [`telemetry`] — the observability layer: per-request lifecycle
//!   traces (`GET /debug/traces`, `--slow-request-ms`), lock-free
//!   latency histograms keyed by endpoint × cost class, and the
//!   Prometheus text exposition behind `GET /metrics`.
//! * [`replication`] — WAL-shipping primary/replica roles: replicas
//!   bootstrap from the primary's FROSTB snapshot, tail its FROSTW
//!   WAL over a long-poll endpoint, and serve the full read surface;
//!   `POST /replication/promote` flips a replica into a primary.
//!
//! Start-up pairs with the `FROSTB` snapshot format
//! ([`frost_storage::snapshot`]): `frostd` accepts either a CSV store
//! directory or a snapshot file and serves either; snapshots load in
//! one sequential read.

pub mod client;
mod event_loop;
pub mod http;
pub mod json;
pub mod replication;
pub mod telemetry;

pub use http::{run_daemon, serve, serve_with, ServeOptions, ServerHandle, ServerState};
