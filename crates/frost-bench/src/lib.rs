//! Shared helpers for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper has a dedicated binary under
//! `src/bin/` (see DESIGN.md's per-experiment index); this library holds
//! the workload construction and evaluation plumbing they share.

use frost_core::clustering::Clustering;
use frost_core::dataset::Dataset;
use frost_core::metrics::confusion::ConfusionMatrix;
use frost_core::metrics::pair;
use frost_datagen::experiments::labeled_candidates;
use frost_datagen::generator::{generate, Generated};
use frost_datagen::presets::Preset;
use frost_matchers::blocking::{Blocker, TokenBlocking};
use frost_matchers::decision::logistic::{LogisticRegression, TrainConfig};
use frost_matchers::decision::DecisionModel;
use frost_matchers::features::{Comparator, FeatureConfig};
use frost_matchers::similarity::Measure;

/// Reads the workload scale factor from `FROST_SCALE` (default 0.05 —
/// fast enough for CI; set `FROST_SCALE=1` to regenerate the paper's
/// full sizes).
pub fn scale_from_env() -> f64 {
    std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.05)
}

/// Generates a preset's dataset + gold standard.
pub fn materialize(preset: &Preset) -> Generated {
    generate(&preset.config)
}

/// The token blocker the contest-style matchers use on the SIGMOD-like
/// datasets (names are long, so token blocking with a stop-word cap
/// keeps the candidate set tractable).
pub fn sigmod_blocker() -> TokenBlocking {
    TokenBlocking {
        attributes: vec!["name".into(), "brand".into()],
        max_token_frequency: 60,
    }
}

/// Feature configuration of a matcher developed on the *dense* D2 data:
/// plain similarities, no missing-value handling (its developers never
/// saw sparse data — the modeling choice behind Table 3's transfer
/// asymmetry; see DESIGN.md).
pub fn dense_features() -> FeatureConfig {
    FeatureConfig::new([
        Comparator::new("name", Measure::TokenJaccard),
        Comparator::new("name", Measure::TokenOverlap),
        Comparator::new("brand", Measure::JaroWinkler),
    ])
}

/// Feature configuration of a matcher developed on the *sparse* D3
/// data: the same similarities plus missing-value indicator features.
pub fn sparse_features() -> FeatureConfig {
    dense_features().with_missing_indicators()
}

/// Trains a contest-style logistic matcher on a generated split.
pub fn train_contest_matcher(
    gen: &Generated,
    features: FeatureConfig,
    positive_ratio: f64,
    labeled_pairs: usize,
    seed: u64,
) -> LogisticRegression {
    let labeled = labeled_candidates(&gen.truth, labeled_pairs, positive_ratio.max(0.05), seed);
    LogisticRegression::train(
        &gen.dataset,
        &labeled,
        features,
        TrainConfig {
            epochs: 250,
            learning_rate: 0.8,
            l2: 1e-4,
            positive_weight: 2.0,
        },
    )
}

/// Precision / recall / f1 of a decision model over a blocker's
/// candidates, with transitive closure (the evaluation route of §5.3).
pub fn evaluate_model(
    ds: &Dataset,
    truth: &Clustering,
    blocker: &dyn Blocker,
    model: &dyn DecisionModel,
) -> (f64, f64, f64) {
    let candidates = blocker.candidates(ds);
    let threshold = model.threshold();
    let matches: Vec<(u32, u32, f64)> = candidates
        .iter()
        .filter_map(|&p| {
            let s = model.score(ds, p);
            (s >= threshold).then_some((p.lo().0, p.hi().0, s))
        })
        .collect();
    let experiment = frost_core::dataset::Experiment::from_scored_pairs("eval", matches);
    let closed = frost_core::clustering::closure::close_experiment(ds.len(), &experiment);
    let matrix = ConfusionMatrix::from_experiment(&closed, truth, ds.len());
    (
        pair::precision(&matrix),
        pair::recall(&matrix),
        pair::f1(&matrix),
    )
}

/// Tunes the similarity threshold of a model on its development split:
/// scores all candidates once, then sweeps a threshold grid with the
/// same `score ≥ t` + transitive-closure semantics as
/// [`evaluate_model`], returning the f1-optimal threshold — the
/// workflow metric/metric diagrams support interactively (§4.5.1).
/// (Learned scores carry heavy ties — many pairs hit identical sigmoid
/// saturation values — so an explicit grid is used rather than diagram
/// prefixes, which split tie groups.)
pub fn tune_threshold_on(
    ds: &Dataset,
    truth: &Clustering,
    blocker: &dyn Blocker,
    model: &dyn DecisionModel,
) -> f64 {
    let scored: Vec<(frost_core::dataset::RecordPair, f64)> = blocker
        .candidates(ds)
        .into_iter()
        .map(|p| (p, model.score(ds, p)))
        .collect();
    let mut best = (0.5f64, f64::NEG_INFINITY);
    for i in 1..20 {
        let t = i as f64 * 0.05;
        let matches: Vec<(u32, u32, f64)> = scored
            .iter()
            .filter(|&&(_, s)| s >= t)
            .map(|&(p, s)| (p.lo().0, p.hi().0, s))
            .collect();
        let experiment = frost_core::dataset::Experiment::from_scored_pairs("sweep", matches);
        let closed = frost_core::clustering::closure::close_experiment(ds.len(), &experiment);
        let matrix = ConfusionMatrix::from_experiment(&closed, truth, ds.len());
        let f1 = pair::f1(&matrix);
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best.0
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a duration in the paper's style (`184ms`, `1.7s`, `6min 43s`).
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ms = d.as_millis();
    if ms < 1_000 {
        format!("{ms}ms")
    } else if ms < 60_000 {
        format!("{:.1}s", d.as_secs_f64())
    } else {
        let mins = ms / 60_000;
        let secs = (ms % 60_000) / 1_000;
        format!("{mins}min {secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_millis(184)), "184ms");
        assert_eq!(fmt_duration(Duration::from_millis(1_700)), "1.7s");
        assert_eq!(fmt_duration(Duration::from_secs(403)), "6min 43s");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.903), "90.3%");
    }

    #[test]
    fn scale_default() {
        // Only meaningful when FROST_SCALE is unset in the test env.
        if std::env::var("FROST_SCALE").is_err() {
            assert_eq!(scale_from_env(), 0.05);
        }
    }

    #[test]
    fn contest_matcher_trains_and_evaluates() {
        let preset = frost_datagen::presets::altosight_x4(0.3);
        let gen = materialize(&preset);
        let model = train_contest_matcher(&gen, sparse_features(), 0.3, 500, 1);
        let blocker = TokenBlocking {
            attributes: vec!["name".into()],
            max_token_frequency: 60,
        };
        let (p, r, f1) = evaluate_model(&gen.dataset, &gen.truth, &blocker, &model);
        assert!(f1 > 0.3, "f1 {f1} (p {p}, r {r})");
    }
}
