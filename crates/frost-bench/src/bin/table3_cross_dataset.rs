//! **Table 3 / Appendix C** — Cross-dataset quality of matching
//! solutions: a matcher developed on X2 (dense) and one developed on X3
//! (sparse), each evaluated on all four SIGMOD-like splits.
//!
//! Expected shape (Appendix C.2): each matcher is best on its own
//! development data; the sparse-trained matcher transfers to the dense
//! domain far better than the dense-trained matcher transfers to the
//! sparse domain ("matching solutions trained on a sparse dataset
//! performed better on a non-sparse dataset than vice versa"); and the
//! D3 train/test gap exceeds the D2 gap (lower vocabulary similarity).
//!
//! ```text
//! cargo run --release -p frost-bench --bin table3_cross_dataset
//! ```

use frost_bench::{
    dense_features, evaluate_model, materialize, pct, scale_from_env, sigmod_blocker,
    train_contest_matcher,
};
use frost_core::profiling;
use frost_datagen::generator::Generated;
use frost_datagen::presets::{sigmod_x2, sigmod_x3, sigmod_z2, sigmod_z3};

fn main() {
    let scale = scale_from_env().min(0.05); // quadratic-ish evaluation; keep modest
    println!("Table 3: Cross-dataset quality of contest-style matchers (scale {scale})");

    let x2 = materialize(&sigmod_x2(scale));
    let z2 = materialize(&sigmod_z2(scale));
    let x3 = materialize(&sigmod_x3(scale));
    let z3 = materialize(&sigmod_z3(scale));
    let splits: [(&str, &Generated); 4] = [("X2", &x2), ("Z2", &z2), ("X3", &x3), ("Z3", &z3)];

    // The D2 team never saw sparse data (no missing-value features);
    // the D3 team did (indicator features) — see DESIGN.md. Each team
    // tunes its threshold on its own development split, the workflow
    // metric/metric diagrams exist for (§4.5.1).
    let blocker = sigmod_blocker();
    let m_x2 = train_contest_matcher(&x2, dense_features(), 0.25, 2_000, 21);
    let t2 = frost_bench::tune_threshold_on(&x2.dataset, &x2.truth, &blocker, &m_x2);
    let m_x2 = m_x2.with_threshold(t2);
    let m_x3 = train_contest_matcher(&x3, frost_bench::sparse_features(), 0.25, 2_000, 31);
    let t3 = frost_bench::tune_threshold_on(&x3.dataset, &x3.truth, &blocker, &m_x3);
    let m_x3 = m_x3.with_threshold(t3);
    println!("tuned thresholds: X2-matcher {t2:.3}, X3-matcher {t3:.3}");

    for (team, model) in [("developed on X2", &m_x2), ("developed on X3", &m_x3)] {
        println!("\nMatching solution {team}:");
        println!(
            "{:<6} {:>11} {:>9} {:>9}",
            "Split", "Precision", "Recall", "f1"
        );
        for (label, gen) in &splits {
            let (p, r, f1) = evaluate_model(&gen.dataset, &gen.truth, &blocker, model);
            println!("{label:<6} {:>11} {:>9} {:>9}", pct(p), pct(r), pct(f1));
        }
    }

    // Appendix C context: the profile features driving the transfer gap.
    println!("\nProfile context (Appendix C):");
    println!(
        "  sparsity: X2 {}  Z2 {}  X3 {}  Z3 {}",
        pct(profiling::sparsity(&x2.dataset)),
        pct(profiling::sparsity(&z2.dataset)),
        pct(profiling::sparsity(&x3.dataset)),
        pct(profiling::sparsity(&z3.dataset)),
    );
    println!(
        "  VS(X2,Z2) = {}   VS(X3,Z3) = {}",
        pct(profiling::vocabulary_similarity(&x2.dataset, &z2.dataset)),
        pct(profiling::vocabulary_similarity(&x3.dataset, &z3.dataset)),
    );
    println!();
    println!("Paper shape: solutions score best on their development split;");
    println!("X3-developed transfers to D2 (avg f1 80.5%) far better than");
    println!("X2-developed transfers to D3 (avg f1 41.4%).");
}
