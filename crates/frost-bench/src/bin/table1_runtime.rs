//! **Table 1** — Runtime of metric/metric diagrams: Snowman's optimized
//! algorithm (Appendix D) vs the naïve per-threshold approach, on five
//! datasets spanning 835 … 1 000 000 records, 100 similarity thresholds.
//!
//! ```text
//! cargo run --release -p frost-bench --bin table1_runtime          # scaled (FROST_SCALE=0.05)
//! FROST_SCALE=1 cargo run --release -p frost-bench --bin table1_runtime   # paper-sized
//! ```
//!
//! Expected shape (not absolute numbers — the paper measured TypeScript
//! on a laptop): the optimized algorithm wins on every dataset and its
//! advantage grows with dataset size (paper: 9× → 66×).

use frost_bench::{fmt_duration, materialize, scale_from_env};
use frost_core::diagram::DiagramEngine;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::presets::table1_presets;
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    let s = 100; // similarity thresholds per diagram, as in the paper
    println!("Table 1: Runtime of Metric/Metric Diagrams ({s} thresholds, scale {scale})");
    println!(
        "{:<16} {:>10} {:>14} {:>12} {:>12} {:>9}",
        "Dataset", "Records", "Matched pairs", "Custom", "Naive", "Speedup"
    );
    let mut sweeps: Vec<(
        usize,
        frost_core::clustering::Clustering,
        frost_core::dataset::Experiment,
    )> = Vec::new();
    for preset in table1_presets(scale) {
        let gen = materialize(&preset);
        let n = gen.dataset.len();
        let experiment = synthetic_experiment(
            format!("{}-exp", preset.config.name),
            &gen.truth,
            preset.matched_pairs,
            0.7,
            preset.config.seed ^ 0xbead,
        );

        // Warm-up + measure: optimized. The sequential entry point
        // keeps this an algorithm-vs-algorithm comparison (the
        // production confusion_series also shards sample points
        // across threads, which would fold host parallelism into the
        // paper's Table 1 ratio).
        let t0 = Instant::now();
        let optimized =
            DiagramEngine::Optimized.confusion_series_sequential(n, &gen.truth, &experiment, s);
        let custom_time = t0.elapsed();

        let t1 = Instant::now();
        let naive = DiagramEngine::Naive.confusion_series_sequential(n, &gen.truth, &experiment, s);
        let naive_time = t1.elapsed();

        assert_eq!(
            optimized, naive,
            "engines disagree on {}",
            preset.config.name
        );
        let speedup = naive_time.as_secs_f64() / custom_time.as_secs_f64().max(1e-9);
        println!(
            "{:<16} {:>10} {:>14} {:>12} {:>12} {:>8.0}x",
            preset.config.name,
            n,
            experiment.len(),
            fmt_duration(custom_time),
            fmt_duration(naive_time),
            speedup
        );
        sweeps.push((n, gen.truth, experiment));
    }

    // Multi-experiment sweep: per-dataset series are independent, so
    // they shard across rayon tasks. (Each dataset has its own ground
    // truth here, so the shards are hand-rolled scoped tasks rather
    // than one confusion_series_multi call; the N-Metrics view over
    // one dataset uses the latter — see the pairset bench's
    // diagram_sweep section for thread-scaling numbers.)
    // Warm-up pass so the sequential/parallel comparison below is not
    // skewed by cold caches. Both sides use the unsharded sweep: the
    // baseline must actually be sequential, and the rayon branch
    // already parallelizes across datasets — inner point-sharding
    // would nest scoped-thread fan-outs and oversubscribe.
    for (n, truth, e) in &sweeps {
        let _ = DiagramEngine::Optimized.confusion_series_sequential(*n, truth, e, s);
    }
    let t_seq = Instant::now();
    let sequential: Vec<_> = sweeps
        .iter()
        .map(|(n, truth, e)| DiagramEngine::Optimized.confusion_series_sequential(*n, truth, e, s))
        .collect();
    let seq_time = t_seq.elapsed();
    use rayon::prelude::*;
    let t_par = Instant::now();
    let parallel: Vec<_> = sweeps
        .par_iter()
        .with_min_len(1)
        .map(|(n, truth, e)| DiagramEngine::Optimized.confusion_series_sequential(*n, truth, e, s))
        .collect();
    let par_time = t_par.elapsed();
    assert_eq!(sequential, parallel, "sharded sweep changed the results");
    println!();
    println!(
        "All {} optimized sweeps: sequential {}, rayon-sharded {} ({:.2}x, {} threads)",
        sweeps.len(),
        fmt_duration(seq_time),
        fmt_duration(par_time),
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
        rayon::current_num_threads()
    );
    println!();
    println!("Paper (Snowman v3.2.0, TypeScript, i5 laptop):");
    println!("  Altosight X4       835    4 005   184ms    1.7s      9x");
    println!("  HPI Cora         1 879    5 067   245ms    7.4s     30x");
    println!("  FreeDB CDs       9 763      147   293ms   16.4s     56x");
    println!("  Songs 100k     100 000   45 801    1.6s   43.9s     28x");
    println!("  Magellan Songs 1000 000  144 349    6.1s  6min 43s  66x");
}
