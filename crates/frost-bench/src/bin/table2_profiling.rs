//! **Table 2** — Profiling the SIGMOD programming-contest datasets:
//! sparsity (SP), textuality (TX), tuple count (TC), positive ratio
//! (PR) and vocabulary similarity (VS) of the D2/D3 train/test splits.
//!
//! The original contest data is not redistributable; the synthetic
//! splits are generated to hit the paper's profile targets (see
//! `frost_datagen::presets`). PR is measured over labelled candidate
//! pairs, as the contest defines it.
//!
//! ```text
//! cargo run --release -p frost-bench --bin table2_profiling
//! ```

use frost_bench::{materialize, pct, scale_from_env};
use frost_core::profiling;
use frost_datagen::experiments::labeled_candidates;
use frost_datagen::presets::{sigmod_x2, sigmod_x3, sigmod_z2, sigmod_z3, Preset};

fn main() {
    let scale = scale_from_env();
    println!("Table 2: Profiling the SIGMOD contest datasets (scale {scale})");
    let presets: Vec<(&str, Preset)> = vec![
        ("X2 (train)", sigmod_x2(scale)),
        ("Z2 (test)", sigmod_z2(scale)),
        ("X3 (train)", sigmod_x3(scale)),
        ("Z3 (test)", sigmod_z3(scale)),
    ];
    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>7}",
        "Dataset", "SP", "TX", "TC", "PR"
    );
    let mut generated = Vec::new();
    for (label, preset) in &presets {
        let gen = materialize(preset);
        let sp = profiling::sparsity(&gen.dataset);
        let tx = profiling::textuality(&gen.dataset);
        let tc = gen.dataset.len();
        // PR over labelled candidate pairs, with the preset's target ratio.
        let labeled = labeled_candidates(
            &gen.truth,
            (tc * 4).max(500),
            preset.positive_ratio,
            preset.config.seed ^ 0x11,
        );
        let pr = labeled.iter().filter(|(_, l)| *l).count() as f64 / labeled.len() as f64;
        println!(
            "{label:<12} {:>8} {tx:>8.2} {tc:>9} {:>7}",
            pct(sp),
            pct(pr)
        );
        generated.push(gen);
    }
    let vs2 = profiling::vocabulary_similarity(&generated[0].dataset, &generated[1].dataset);
    let vs3 = profiling::vocabulary_similarity(&generated[2].dataset, &generated[3].dataset);
    println!("VS(X2, Z2) = {}", pct(vs2));
    println!("VS(X3, Z3) = {}", pct(vs3));
    println!();
    println!("Paper targets:");
    println!("  X2: SP 11.1%  TX 27.99  TC 58 653  PR 2.2%");
    println!("  Z2: SP 19.7%  TX 23.69  TC 18 915  PR 3.6%");
    println!("  X3: SP 50.1%  TX 15.53  TC 56 616  PR 2.2%");
    println!("  Z3: SP 42.6%  TX 15.35  TC 35 778  PR 12.1%");
    println!("  VS(X2,Z2) 59.0%   VS(X3,Z3) 37.7%");
}
