//! **Figure 3** — A precision/recall curve over similarity thresholds,
//! produced by the metric/metric-diagram engine (§4.5.1, Appendix D).
//!
//! ```text
//! cargo run --release -p frost-bench --bin fig3_pr_curve
//! ```
//!
//! Expected shape: precision near 1 at high thresholds, decaying as the
//! threshold drops while recall climbs to 1 — with the f1-optimal
//! threshold printed, the knob Snowman exists to help users find.

use frost_bench::{materialize, scale_from_env};
use frost_core::diagram::{DiagramEngine, MetricDiagram};
use frost_core::metrics::pair::PairMetric;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::presets::altosight_x4;

fn main() {
    let scale = scale_from_env().max(0.3);
    let preset = altosight_x4(scale);
    let gen = materialize(&preset);
    let experiment = synthetic_experiment(
        "example-run",
        &gen.truth,
        preset.matched_pairs.max(500),
        0.8,
        7,
    );
    let s = 25;
    println!(
        "Figure 3: precision/recall curve ({} records, {} scored matches, {s} thresholds)",
        gen.dataset.len(),
        experiment.len()
    );
    println!("{:>10} {:>8} {:>10}", "threshold", "recall", "precision");
    let points = MetricDiagram::precision_recall().compute(
        DiagramEngine::Optimized,
        gen.dataset.len(),
        &gen.truth,
        &experiment,
        s,
    );
    for (threshold, recall, precision) in &points {
        let t = if threshold.is_infinite() {
            "inf".to_string()
        } else {
            format!("{threshold:.3}")
        };
        println!("{t:>10} {recall:>8.3} {precision:>10.3}");
    }
    let (best_t, best_f1) = MetricDiagram::best_threshold(
        DiagramEngine::Optimized,
        PairMetric::F1,
        gen.dataset.len(),
        &gen.truth,
        &experiment,
        s,
    );
    println!("\nbest f1 = {best_f1:.3} at threshold {best_t:.3}");
    println!("(the paper's §5.4 finding: two contest teams had not picked the");
    println!(" f1-optimal threshold; this sweep is how Snowman reveals that)");
}
