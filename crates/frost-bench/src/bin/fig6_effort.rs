//! **Figure 6** — Maximum f1 score against effort spent (hours):
//! three matching solutions optimized from scratch on a SIGMOD-like
//! dataset, with effort tracked throughout.
//!
//! ```text
//! cargo run --release -p frost-bench --bin fig6_effort
//! ```
//!
//! Expected shape: each solution has a breakthrough point, then all
//! plateau (the paper observed a barrier around 14 hours above which
//! only minor improvements happen).

use frost_bench::materialize;
use frost_core::softkpi::EffortCurve;
use frost_datagen::presets::altosight_x4;
use frost_matchers::features::Comparator;
use frost_matchers::similarity::Measure;
use frost_matchers::tuning::Tuner;

fn main() {
    let gen = materialize(&altosight_x4(0.25));
    println!(
        "Figure 6: max f1 against effort (hours), dataset of {} records",
        gen.dataset.len()
    );

    let tuners = [
        Tuner {
            solution: "rule-based".into(),
            basic_comparators: vec![Comparator::new("name", Measure::Exact)],
            advanced_comparators: vec![
                Comparator::new("name", Measure::TokenJaccard),
                Comparator::new("brand", Measure::Exact),
            ],
            steps: 48,
            hours_per_step: 0.5,
            breakthrough_step: 10,
            seed: 11,
            initial_threshold: 0.55,
        },
        Tuner {
            solution: "ml-based".into(),
            basic_comparators: vec![Comparator::new("name", Measure::TokenJaccard)],
            advanced_comparators: vec![
                Comparator::new("name", Measure::TokenOverlap),
                Comparator::new("brand", Measure::JaroWinkler),
                Comparator::new("size", Measure::Exact),
            ],
            steps: 48,
            hours_per_step: 0.5,
            breakthrough_step: 14,
            seed: 22,
            initial_threshold: 0.7,
        },
        Tuner {
            solution: "hybrid".into(),
            basic_comparators: vec![
                Comparator::new("name", Measure::TokenJaccard),
                Comparator::new("brand", Measure::Exact),
            ],
            advanced_comparators: vec![Comparator::new("name", Measure::MongeElkan)],
            steps: 48,
            hours_per_step: 0.5,
            breakthrough_step: 18,
            seed: 33,
            initial_threshold: 0.8,
        },
    ];

    let mut curves = Vec::new();
    for tuner in &tuners {
        let outcome = tuner.run(&gen.dataset, &gen.truth);
        curves.push(EffortCurve::new(
            outcome.solution.clone(),
            outcome.best_trace.clone(),
        ));
    }

    // Print the three curves side by side at each effort checkpoint.
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "hours", curves[0].solution, curves[1].solution, curves[2].solution
    );
    let maxes: Vec<Vec<frost_core::softkpi::EffortPoint>> =
        curves.iter().map(EffortCurve::running_max).collect();
    for i in (0..maxes[0].len()).step_by(2) {
        println!(
            "{:>7.1} {:>12.3} {:>12.3} {:>12.3}",
            maxes[0][i].hours, maxes[0][i].metric, maxes[1][i].metric, maxes[2][i].metric
        );
    }

    println!("\nFEVER-style queries (§3.3):");
    for curve in &curves {
        let reach = curve
            .effort_to_reach(0.5)
            .map(|h| format!("{h:.1} h"))
            .unwrap_or_else(|| "never".into());
        let breakthrough = curve
            .breakthrough()
            .map(|p| format!("{:.1} h", p.hours))
            .unwrap_or_default();
        let plateau = curve
            .plateau_start(0.01)
            .map(|h| format!("{h:.1} h"))
            .unwrap_or_default();
        println!(
            "  {:<12} f1≥0.5 after {reach}; breakthrough at {breakthrough}; plateau from {plateau}",
            curve.solution
        );
    }
    println!("\nPaper shape: breakthrough, then a plateau (~14 h) with only minor gains.");
}
