//! **Figure 7** — f1 score over time at the SIGMOD contest: the raw
//! submission timelines of several teams, showing the trial-and-error
//! character (scores rise overall but sometimes decline sharply).
//!
//! ```text
//! cargo run --release -p frost-bench --bin fig7_timeline
//! ```

use frost_bench::materialize;
use frost_datagen::presets::altosight_x4;
use frost_matchers::features::Comparator;
use frost_matchers::similarity::Measure;
use frost_matchers::tuning::Tuner;
use rayon::prelude::*;

fn main() {
    let gen = materialize(&altosight_x4(0.25));
    println!(
        "Figure 7: f1 over time (raw submissions), dataset of {} records",
        gen.dataset.len()
    );

    let teams: Vec<Tuner> = (0..3)
        .map(|i| Tuner {
            solution: format!("team-{}", i + 1),
            basic_comparators: vec![Comparator::new("name", Measure::TokenJaccard)],
            advanced_comparators: vec![
                Comparator::new("brand", Measure::JaroWinkler),
                Comparator::new("name", Measure::TokenOverlap),
            ],
            steps: 36,
            hours_per_step: 1.0,
            breakthrough_step: 8 + 4 * i,
            seed: 100 + i as u64,
            initial_threshold: 0.6 + 0.1 * i as f64,
        })
        .collect();

    // Each team's 36-step tuning timeline is an independent diagram
    // sweep — shard them across rayon tasks (min_len 1: three heavy
    // items must not collapse into one chunk).
    let outcomes: Vec<_> = teams
        .par_iter()
        .with_min_len(1)
        .map(|t| t.run(&gen.dataset, &gen.truth))
        .collect();
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "day", outcomes[0].solution, outcomes[1].solution, outcomes[2].solution
    );
    for i in 0..outcomes[0].raw_trace.len() {
        println!(
            "{:>5.0} {:>10.3} {:>10.3} {:>10.3}",
            outcomes[0].raw_trace[i].0,
            outcomes[0].raw_trace[i].1,
            outcomes[1].raw_trace[i].1,
            outcomes[2].raw_trace[i].1
        );
    }

    // Quantify the trial-and-error character.
    for o in &outcomes {
        let mut best = f64::NEG_INFINITY;
        let mut declines = 0;
        for &(_, f1) in &o.raw_trace {
            if f1 < best - 1e-9 {
                declines += 1;
            }
            best = best.max(f1);
        }
        println!(
            "{}: final best f1 {:.3}, {declines} submissions below the running best",
            o.solution, best
        );
    }
    println!("\nPaper shape: quality increases overall, with occasional significant declines.");
}
