//! **Figure 1 / §5.4** — The N-Intersection viewer: set-based
//! comparison of several matching runs against the ground truth,
//! including the paper's headline analysis — true duplicate pairs that
//! almost no solution found (all three such pairs in the paper shared
//! one especially hard record).
//!
//! ```text
//! cargo run --release -p frost-bench --bin fig1_venn
//! ```

use frost_bench::materialize;
use frost_core::dataset::{Experiment, RoaringPairSet};
use frost_core::explore::setops::{hard_pairs, venn_regions, SetExpression};
use frost_core::metrics::confusion::{total_pairs, ConfusionMatrix};
use frost_core::metrics::pair;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::presets::altosight_x4;
use rayon::prelude::*;

fn main() {
    let gen = materialize(&altosight_x4(0.3));
    let n = gen.dataset.len();
    println!(
        "Figure 1 / §5.4: N-intersection analysis over 5 runs on {} records",
        n
    );

    // Five matching solutions of varying quality (three ML-ish strong,
    // one rule-based weaker, one hybrid), as in the §5.4 contest study.
    let qualities = [0.92, 0.88, 0.85, 0.75, 0.82];
    let experiments: Vec<Experiment> = qualities
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            synthetic_experiment(
                format!("run-{}", i + 1),
                &gen.truth,
                (gen.truth.pair_count() as f64 * 0.9) as usize,
                q,
                200 + i as u64,
            )
        })
        .collect();

    // N-Metrics viewer: the per-run f1 overview. The runs are
    // independent, so their confusion matrices are computed in
    // parallel, each on the two-level roaring engine (the runs are
    // uniformly sparse matcher outputs — its home workload).
    println!("\nN-Metrics view:");
    let truth_roaring: RoaringPairSet = gen.truth.intra_pairs().collect();
    let matrices: Vec<ConfusionMatrix> = experiments
        .par_iter()
        .with_min_len(1)
        .map(|e| {
            ConfusionMatrix::from_pair_sets(&e.roaring_pair_set(), &truth_roaring, total_pairs(n))
        })
        .collect();
    let mut f1s = Vec::new();
    for (e, m) in experiments.iter().zip(&matrices) {
        let f1 = pair::f1(m);
        f1s.push(f1);
        println!(
            "  {:<7} precision {:.3}  recall {:.3}  f1 {:.3}",
            e.name(),
            pair::precision(m),
            pair::recall(m),
            f1
        );
    }
    let avg = f1s.iter().sum::<f64>() / f1s.len() as f64;
    println!(
        "  average f1 {:.3} (min {:.3}, max {:.3}) — paper: avg 90.3%, 87.4–92.7%",
        avg,
        f1s.iter().cloned().fold(f64::INFINITY, f64::min),
        f1s.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );

    // Figure 1 proper: ground-truth pairs found by run-1 but not run-2,
    // evaluated on the two-level roaring engine.
    let universe = vec![
        experiments[0].roaring_pair_set(),
        experiments[1].roaring_pair_set(),
        truth_roaring.clone(),
    ];
    let found_by_1_not_2 = SetExpression::set(2)
        .intersection(SetExpression::set(0))
        .difference(SetExpression::set(1))
        .evaluate(&universe);
    println!(
        "\nGround-truth matches run-1 found and run-2 did not: {}",
        found_by_1_not_2.len()
    );

    // The three-set Venn region sizes (run-1, run-2, ground truth).
    println!("\nVenn regions (run-1, run-2, ground truth):");
    for region in venn_regions(&universe) {
        let mut label = String::new();
        for (i, name) in ["run-1", "run-2", "truth"].iter().enumerate() {
            if region.contains_set(i) {
                if !label.is_empty() {
                    label.push_str(" ∩ ");
                }
                label.push_str(name);
            }
        }
        println!("  {label:<24} {:>7} pairs", region.pairs.len());
    }

    // §5.4: duplicates missed by at least 4 of the 5 solutions, i.e.
    // found by at most 1.
    let refs: Vec<&Experiment> = experiments.iter().collect();
    let hard = hard_pairs(&truth_roaring, &refs, 1);
    println!(
        "\nTrue duplicates found by at most one of the five solutions: {}",
        hard.len()
    );
    // Which records recur among them? (the paper found one record in
    // all three such pairs: altosight.com//1420)
    let mut record_counts: std::collections::HashMap<u32, usize> = Default::default();
    for &(p, _) in &hard {
        *record_counts.entry(p.lo().0).or_insert(0) += 1;
        *record_counts.entry(p.hi().0).or_insert(0) += 1;
    }
    if let Some((rec, count)) = record_counts.iter().max_by_key(|&(_, c)| *c) {
        println!(
            "hardest record: {} appears in {count} of the universally-missed pairs",
            gen.dataset.native_id(frost_core::dataset::RecordId(*rec))
        );
    }
}
