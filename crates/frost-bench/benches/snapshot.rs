//! Snapshot and serving-cache benchmarks: the measurements behind the
//! `frost-server` subsystem.
//!
//! ```text
//! cargo bench -p frost-bench --bench snapshot             # smoke scale
//! FROST_SCALE=1 cargo bench -p frost-bench --bench snapshot
//! ```
//!
//! Sections:
//!
//! 1. **Snapshot load vs CSV import** — the start-up path. The CSV
//!    path is `persist::load`: char-level CSV parsing, id interning,
//!    per-experiment union-find and roaring-arena construction. The
//!    snapshot path is `snapshot::load`: one sequential read plus
//!    varint decoding straight into the arenas. The `FROSTB` format
//!    exists to make this ratio large; the run **hard-asserts ≥ 3×**
//!    at smoke scale and records the ratio as `snapshot_load.speedup`
//!    for the CI gate (`FROST_BENCH_BASELINE`, −25% floor).
//! 2. **Cache hit vs recompute** — the serving path. A cache hit on a
//!    memoized diagram body versus recomputing the series and
//!    re-rendering it (what every request would pay without the
//!    generation-stamped cache).
//!
//! Results land in `BENCH_snapshot.json` (`FROST_BENCH_OUT`
//! overrides).

use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::generate;
use frost_storage::cache::ShardedCache;
use frost_storage::{persist, snapshot, BenchmarkStore};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`n` wall-clock seconds for `f`, with the result kept alive.
fn time_best<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("n > 0"))
}

fn build_store(scale: f64) -> BenchmarkStore {
    let mut store = BenchmarkStore::new();
    for preset in [
        frost_datagen::presets::cora(scale),
        frost_datagen::presets::freedb_cds(scale),
        frost_datagen::presets::altosight_x4(scale),
    ] {
        let generated = generate(&preset.config);
        let name = generated.dataset.name().to_string();
        let records = generated.dataset.len();
        store
            .add_dataset(generated.dataset)
            .expect("distinct presets");
        store
            .set_gold_standard(&name, generated.truth)
            .expect("dataset just added");
        let truth = store.gold_standard(&name).expect("just set").clone();
        // Four experiments per dataset at different quality levels,
        // each proposing ~2 matches per record — the shape a
        // benchmarking store accumulates (matcher outputs scale with
        // the dataset, and §4's views hold several runs per dataset).
        for (i, fraction) in [(1, 0.95), (2, 0.8), (3, 0.6), (4, 0.4)] {
            let exp = synthetic_experiment(
                format!("{name}-run{i}"),
                &truth,
                (records * 2).max(8),
                fraction,
                1000 + i as u64,
            );
            store
                .add_experiment(&name, exp, None)
                .expect("distinct names");
        }
    }
    store
}

fn main() {
    let scale = frost_bench::scale_from_env();
    println!("building store (scale {scale}) ...");
    let store = build_store(scale);
    let records: usize = store
        .dataset_names()
        .iter()
        .map(|n| store.dataset(n).unwrap().len())
        .sum();
    let experiments = store.experiment_names(None);
    let pairs: usize = experiments
        .iter()
        .map(|n| store.experiment(n).unwrap().experiment.len())
        .sum();
    println!(
        "{records} records, {} experiments, {pairs} pairs",
        experiments.len()
    );

    let dir = std::env::temp_dir().join(format!("frost-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let csv_dir = dir.join("store");
    let snap_path = dir.join("store.frostb");

    // ---- Section 1: start-up paths ----
    let iters = if scale >= 0.5 { 3 } else { 7 };
    let (csv_save_s, ()) = time_best(iters, || persist::save(&store, &csv_dir).expect("csv save"));
    let (snap_save_s, ()) = time_best(iters, || {
        snapshot::save(&store, &snap_path).expect("snapshot save")
    });
    let (csv_load_s, csv_loaded) = time_best(iters, || persist::load(&csv_dir).expect("csv load"));
    let (snap_load_s, snap_loaded) =
        time_best(iters, || snapshot::load(&snap_path).expect("snapshot load"));

    // Both paths restore the same store (spot check).
    assert_eq!(csv_loaded.dataset_names(), snap_loaded.dataset_names());
    assert_eq!(
        csv_loaded.experiment_names(None),
        snap_loaded.experiment_names(None)
    );
    for name in &experiments {
        assert_eq!(
            csv_loaded.experiment(name).unwrap().pair_set,
            snap_loaded.experiment(name).unwrap().pair_set,
            "loaded pair sets must agree"
        );
    }

    let csv_bytes: u64 = walk_bytes(&csv_dir);
    let snap_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
    let speedup = csv_load_s / snap_load_s;
    println!("csv   save {csv_save_s:.4}s  load {csv_load_s:.4}s  ({csv_bytes} bytes)");
    println!("frostb save {snap_save_s:.4}s  load {snap_load_s:.4}s  ({snap_bytes} bytes)");
    println!("snapshot load speedup vs CSV import + rebuild: {speedup:.1}×");
    if scale >= 0.05 {
        assert!(
            speedup >= 3.0,
            "snapshot load must be ≥ 3× faster than the CSV path (got {speedup:.2}×)"
        );
    }

    // ---- Section 2: cache hit vs recompute ----
    let cache: ShardedCache = ShardedCache::new(16);
    let diagram_exp = &experiments[0];
    let samples = 20;
    let render = |store: &BenchmarkStore| {
        let points = store
            .diagram_series(
                diagram_exp,
                frost_core::diagram::DiagramEngine::Optimized,
                samples,
            )
            .expect("diagram");
        let mut body = String::with_capacity(points.len() * 32);
        for p in &points {
            body.push_str(&format!(
                "{},{},{};",
                p.threshold, p.matrix.true_positives, p.matrix.false_positives
            ));
        }
        body
    };
    // Miss path: full recompute + render on a cold store each round
    // (the store memoizes diagram series internally, so a fresh store
    // per iteration models the uncached request).
    let miss_iters = if scale >= 0.5 { 5 } else { 20 };
    let (miss_s, body) = time_best(miss_iters, || {
        let cold = snapshot::load(&snap_path).expect("load");
        render(&cold)
    });
    let generation = cache.begin();
    cache.insert("diagram", Arc::from(body.as_str()), generation);
    let (hit_s, hit) = time_best(miss_iters, || cache.get("diagram").expect("cached"));
    assert_eq!(hit.as_ref(), body);
    let cache_speedup = miss_s / hit_s;
    println!(
        "cache: recompute {:.1}µs vs hit {:.3}µs ({cache_speedup:.0}×, hits {})",
        miss_s * 1e6,
        hit_s * 1e6,
        cache.hits()
    );
    assert!(cache.hits() >= 1);

    // ---- BENCH_snapshot.json + gate ----
    let doc = Value::object([
        ("scale".to_string(), Value::from(scale)),
        ("records".to_string(), Value::from(records)),
        ("experiments".to_string(), Value::from(experiments.len())),
        ("pairs".to_string(), Value::from(pairs)),
        (
            "csv".to_string(),
            Value::object([
                ("save_seconds".to_string(), Value::from(csv_save_s)),
                ("load_seconds".to_string(), Value::from(csv_load_s)),
                ("bytes".to_string(), Value::from(csv_bytes)),
            ]),
        ),
        (
            "snapshot".to_string(),
            Value::object([
                ("save_seconds".to_string(), Value::from(snap_save_s)),
                ("load_seconds".to_string(), Value::from(snap_load_s)),
                ("bytes".to_string(), Value::from(snap_bytes)),
            ]),
        ),
        (
            "snapshot_load".to_string(),
            Value::object([("speedup".to_string(), Value::from(speedup))]),
        ),
        (
            "cache".to_string(),
            Value::object([
                ("recompute_seconds".to_string(), Value::from(miss_s)),
                ("hit_seconds".to_string(), Value::from(hit_s)),
                ("speedup".to_string(), Value::from(cache_speedup)),
            ]),
        ),
    ]);
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = match std::env::var("FROST_BENCH_OUT") {
        Ok(p) if std::path::Path::new(&p).is_absolute() => std::path::PathBuf::from(p),
        Ok(p) => workspace_root.join(p),
        Err(_) => workspace_root.join("BENCH_snapshot.json"),
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc)).expect("write bench json");
    println!("wrote {}", out_path.display());
    let _ = std::fs::remove_dir_all(&dir);

    // Regression gate: the `snapshot_load` entry of the smoke bench
    // gate. Same shape as the pairset gate — scale-matched baseline,
    // −25% floor on the recorded speedup.
    if let Ok(baseline_env) = std::env::var("FROST_BENCH_BASELINE") {
        let mut baseline_path = std::path::PathBuf::from(&baseline_env);
        if !baseline_path.exists() {
            baseline_path = workspace_root.join(&baseline_env);
        }
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(&baseline_path).expect("read baseline json"),
        )
        .expect("parse baseline json");
        let recorded_scale = baseline.get("scale").and_then(Value::as_f64).unwrap_or(1.0);
        let recorded = baseline
            .get("snapshot_load")
            .and_then(|v| v.get("speedup"))
            .and_then(Value::as_f64)
            .expect("baseline missing snapshot_load.speedup");
        if !(recorded_scale / 1.5..=recorded_scale * 1.5).contains(&scale) {
            println!(
                "baseline gate skipped: baseline recorded at scale {recorded_scale}, this run at {scale}"
            );
        } else {
            let floor = recorded * 0.75;
            println!(
                "baseline gate (snapshot_load): {speedup:.1}× vs recorded {recorded:.1}× (floor {floor:.1}×)"
            );
            if speedup < floor {
                eprintln!(
                    "REGRESSION: snapshot-load speedup {speedup:.1}× fell more than 25% below the recorded {recorded:.1}×"
                );
                std::process::exit(1);
            }
        }
    }
}

fn walk_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += walk_bytes(&path);
            } else {
                total += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}
