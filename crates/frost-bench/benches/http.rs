//! Loopback HTTP throughput benchmark: the serving-path measurement
//! behind the keep-alive + response-byte-cache work.
//!
//! ```text
//! cargo bench -p frost-bench --bench http              # smoke scale
//! FROST_SCALE=1 cargo bench -p frost-bench --bench http
//! ```
//!
//! `N` client threads each issue `M` requests against a live `frostd`
//! server state on a loopback ephemeral port, in three transport
//! modes:
//!
//! * **conn-per-request** — a fresh TCP connection and
//!   `Connection: close` per request (the PR-4 serving model);
//! * **keep-alive** — one persistent connection per thread, reused for
//!   all `M` requests;
//! * **pipelined** — one persistent connection per thread, requests
//!   written in batches of 16 before reading the 16 responses.
//!
//! Each mode runs three endpoint mixes: **hot** (one cacheable
//! endpoint repeated — served from the response-byte tier by a single
//! `write_all`), **cold** (every request a distinct uncached `/diagram`
//! shape — full compute + render), and **mixed** (alternating).
//!
//! The run hard-asserts keep-alive ≥ 2× conn-per-request on the hot
//! mix (scale ≥ 0.05) and records that ratio as
//! `keepalive.hot_speedup_vs_conn_per_request` for the CI gate
//! (`FROST_BENCH_BASELINE`, −25% floor). Results land in
//! `BENCH_http.json` (`FROST_BENCH_OUT` overrides).
//!
//! A second phase measures **overload behavior** against a
//! deliberately constrained server (2 workers, bounded admission
//! queue, 200 ms request deadline): closed-loop capacity first, then
//! paced open-loop floods at 1× and 2× of that capacity, reporting
//! goodput (successful responses per second) and p50/p99 latency per
//! run. `overload.goodput_ratio_2x_vs_1x` — how well goodput holds up
//! when offered load doubles past capacity — is the shedding
//! regression gate (same −25% baseline floor).
//!
//! A third phase measures the **high-connection mix**: a herd of
//! mostly-idle keep-alive connections (8 000 at scale 1) held open
//! against the event loop while a small active subset keeps issuing
//! hot requests. Active p50/p99/p999 latency is recorded with and
//! without the herd; `highconn.p99_penalty_vs_alone` — how much the
//! idle mass inflates active tail latency — is the C10K regression
//! gate (3× ceiling vs the recorded baseline ratio).
//!
//! A fourth phase measures **telemetry overhead**: the hot keep-alive
//! mix against a server with per-request tracing + histograms enabled
//! (the default) vs `--no-telemetry`, interleaved over several rounds
//! with the min-of-rounds p50 per arm. `telemetry.overhead_pct` lands
//! in the JSON and the run hard-asserts the enabled arm costs ≤ 5%
//! hot-path p50 (scale ≥ 0.05).
//!
//! All percentiles here come from the same log-linear histogram the
//! server's `/metrics` endpoint exposes
//! ([`frost_storage::telemetry::Histogram`]), not a private
//! sort-and-index — one quantile implementation, property-tested
//! against exact order statistics in `frost-storage`.

use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::{generate, GeneratorConfig};
use frost_server::client::{http_get, read_raw_response, Connection, IdleHerd};
use frost_server::{serve_with, ServeOptions, ServerHandle, ServerState};
use frost_storage::telemetry::Histogram;
use frost_storage::BenchmarkStore;
use serde_json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipelining depth for the pipelined mode.
const PIPELINE_DEPTH: usize = 16;

fn build_store(scale: f64) -> BenchmarkStore {
    let records = ((8_000f64) * scale).max(400.0) as usize;
    let generated = generate(&GeneratorConfig::small("http-bench", records, 31));
    let name = generated.dataset.name().to_string();
    let mut store = BenchmarkStore::new();
    store.add_dataset(generated.dataset).expect("fresh store");
    store
        .set_gold_standard(&name, generated.truth)
        .expect("dataset just added");
    let truth = store.gold_standard(&name).expect("just set").clone();
    for (i, fraction) in [(1, 0.9), (2, 0.7), (3, 0.5)] {
        let exp = synthetic_experiment(
            format!("{name}-run{i}"),
            &truth,
            (records * 2).max(64),
            fraction,
            700 + i as u64,
        );
        store.add_experiment(&name, exp, None).expect("unique name");
    }
    store
}

/// The three endpoint mixes. Cold requests must each be a distinct
/// cache key, so the target carries a per-request discriminator.
#[derive(Clone, Copy)]
enum Mix {
    Hot,
    Cold,
    Mixed,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Hot => "hot",
            Mix::Cold => "cold",
            Mix::Mixed => "mixed",
        }
    }
}

/// URL-safe `x`-metric names used to widen the cold key space.
const COLD_METRICS: [&str; 4] = ["recall", "precision", "f1", "accuracy"];

/// The target for request number `seq` of a thread. Hot requests reuse
/// one cacheable endpoint; cold requests enumerate distinct `/diagram`
/// shapes (sample count × x-metric × experiment are all part of the
/// cache key), so within one run every cold request is a fresh compute
/// — the caches are additionally invalidated between runs. Samples
/// stay small so compute cost is the endpoint's floor, not an
/// artificial inflation.
fn target_for(
    mix: Mix,
    experiments: &[String],
    requests_per_thread: usize,
    thread: usize,
    seq: usize,
) -> String {
    let hot = || format!("/metrics?experiment={}", experiments[0]);
    let cold = |seq: usize| {
        let g = thread * requests_per_thread + seq;
        let samples = 7 + g % 211;
        let x = COLD_METRICS[(g / 211) % COLD_METRICS.len()];
        let experiment = &experiments[(g / (211 * COLD_METRICS.len())) % experiments.len()];
        format!("/diagram?experiment={experiment}&x={x}&samples={samples}")
    };
    match mix {
        Mix::Hot => hot(),
        Mix::Cold => cold(seq),
        Mix::Mixed => {
            if seq.is_multiple_of(2) {
                hot()
            } else {
                cold(seq)
            }
        }
    }
}

/// Runs `threads × requests` in the given transport mode and returns
/// requests per second (wall clock across all threads).
fn run_mode(
    handle: &ServerHandle,
    mode: &'static str,
    mix: Mix,
    experiments: &Arc<Vec<String>>,
    threads: usize,
    requests: usize,
) -> f64 {
    let addr = handle.addr();
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let experiments = Arc::clone(experiments);
            std::thread::spawn(move || match mode {
                "conn_per_request" => {
                    for seq in 0..requests {
                        let target = target_for(mix, &experiments, requests, t, seq);
                        let (status, _) =
                            http_get(&format!("http://{addr}{target}")).expect("request");
                        assert_eq!(status, 200);
                    }
                }
                "keepalive" => {
                    let mut conn = Connection::open(&addr.to_string()).expect("connect");
                    for seq in 0..requests {
                        let target = target_for(mix, &experiments, requests, t, seq);
                        let (status, _) = conn.get(&target).expect("request");
                        assert_eq!(status, 200);
                    }
                }
                "pipelined" => {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .expect("timeout");
                    let mut spill: Vec<u8> = Vec::new();
                    let mut seq = 0usize;
                    while seq < requests {
                        let batch = PIPELINE_DEPTH.min(requests - seq);
                        let mut wire = String::new();
                        for k in 0..batch {
                            let target = target_for(mix, &experiments, requests, t, seq + k);
                            wire.push_str(&format!("GET {target} HTTP/1.1\r\nHost: b\r\n\r\n"));
                        }
                        stream.write_all(wire.as_bytes()).expect("send batch");
                        for _ in 0..batch {
                            read_one_response(&mut stream, &mut spill);
                        }
                        seq += batch;
                    }
                }
                other => panic!("unknown mode {other}"),
            })
        })
        .collect();
    for w in workers {
        w.join().expect("bench client thread");
    }
    (threads * requests) as f64 / start.elapsed().as_secs_f64()
}

/// Reads one Content-Length framed response off a pipelined socket
/// (the client's framing implementation, shared with the tests).
fn read_one_response(stream: &mut TcpStream, spill: &mut Vec<u8>) {
    let (status, head, _) = read_raw_response(stream, spill).expect("framed response");
    assert_eq!(status, 200, "bad response: {head:?}");
}

/// The overload phase's request stream: every request is a distinct
/// response-cache key (samples band × x-metric × y-metric ×
/// experiment ≈ 10k keys per generation), so each one exercises the
/// compute class rather than the cached fast path, at a stable
/// per-request cost — the store-level series cache bounds the heavy
/// work to the samples band.
fn overload_target(experiments: &[String], g: usize) -> String {
    let samples = 16 + g % 211;
    let x = COLD_METRICS[(g / 211) % COLD_METRICS.len()];
    let y = COLD_METRICS[(g / (211 * COLD_METRICS.len())) % COLD_METRICS.len()];
    let len = 211 * COLD_METRICS.len() * COLD_METRICS.len();
    let experiment = &experiments[(g / len) % experiments.len()];
    format!("/diagram?experiment={experiment}&x={x}&y={y}&samples={samples}")
}

/// One conn-per-request exchange; `None` means the connection itself
/// failed (refused / reset), which the overload runs count separately.
fn overload_request(addr: &str, target: &str) -> Option<(u16, Duration)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let request = format!("GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).ok()?;
    let mut spill = Vec::new();
    let (status, _, _) = read_raw_response(&mut stream, &mut spill).ok()?;
    Some((status, started.elapsed()))
}

/// Pacer threads for the paced floods. Deliberately larger than
/// `workers + max_queued`: a synchronous pacer stalls while a request
/// is in flight, so overload (queue-full rejects, deadline sheds) is
/// only reachable when the client-side concurrency ceiling exceeds
/// what the server will queue.
const PACERS: usize = 16;

/// Clients for the closed-loop capacity probe: enough to keep both
/// workers busy with the queue partly full, few enough (strictly
/// below `workers + max_queued`) that the probe never floods its own
/// measurement with reject churn.
const PROBE_CLIENTS: usize = 6;

/// Closed-loop capacity probe: [`PROBE_CLIENTS`] flat-out
/// conn-per-request clients against the constrained server;
/// successful responses per second is the capacity the paced floods
/// are scaled from.
fn overload_capacity(addr: &str, experiments: &Arc<Vec<String>>, requests: usize) -> f64 {
    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let start = Instant::now();
    let clients: Vec<_> = (0..PROBE_CLIENTS)
        .map(|_| {
            let addr = addr.to_string();
            let experiments = Arc::clone(experiments);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                loop {
                    let g = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if g >= requests {
                        return ok;
                    }
                    let target = overload_target(&experiments, g);
                    if matches!(overload_request(&addr, &target), Some((200, _))) {
                        ok += 1;
                    }
                }
            })
        })
        .collect();
    let ok: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(ok > 0, "capacity probe served nothing");
    ok as f64 / start.elapsed().as_secs_f64()
}

struct OverloadRun {
    offered_multiple: f64,
    offered_rps: f64,
    attempted_rps: f64,
    goodput_rps: f64,
    ok: usize,
    shed: usize,
    errors: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// Millisecond percentile through the shared telemetry histogram —
/// the same quantile implementation `/metrics` serves, accurate to one
/// bucket width (≤ 0.8% relative at `sub_bits` 7).
fn percentile_ms(latencies: &[Duration], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let histogram = Histogram::new(7);
    for latency in latencies {
        histogram.record_duration(*latency);
    }
    histogram.quantile(p) as f64 / 1e6
}

/// The active subset of the high-connection phase: `threads`
/// keep-alive clients each timing `requests` hot requests
/// individually. Returns throughput plus the latency sample.
fn run_active_subset(
    addr: &str,
    target: &str,
    threads: usize,
    requests: usize,
) -> (f64, Vec<Duration>) {
    let start = Instant::now();
    let clients: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.to_string();
            let target = target.to_string();
            std::thread::spawn(move || {
                let mut conn = Connection::open(&addr).expect("active connect");
                let mut latencies = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let begun = Instant::now();
                    let (status, _) = conn.get(&target).expect("active request");
                    assert_eq!(status, 200);
                    latencies.push(begun.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    for client in clients {
        latencies.extend(client.join().expect("active client"));
    }
    let rps = latencies.len() as f64 / start.elapsed().as_secs_f64();
    (rps, latencies)
}

/// The `{rps, p50, p99, p999}` JSON entry for one active-subset run.
fn active_entry(rps: f64, latencies: &[Duration]) -> Value {
    Value::object([
        ("requests_per_second".to_string(), Value::from(rps)),
        (
            "p50_ms".to_string(),
            Value::from(percentile_ms(latencies, 0.50)),
        ),
        (
            "p99_ms".to_string(),
            Value::from(percentile_ms(latencies, 0.99)),
        ),
        (
            "p999_ms".to_string(),
            Value::from(percentile_ms(latencies, 0.999)),
        ),
    ])
}

/// Paced open-loop flood: eight pacer threads jointly offer
/// `offered_rps` until `requests` have been attempted. A pacer that
/// falls behind its schedule (the server stopped answering quickly)
/// degrades to closed-loop, which the recorded `attempted_rps`
/// exposes; with shedding working, rejects are fast enough that the
/// offered rate is actually achieved.
fn run_overload(
    addr: &str,
    experiments: &Arc<Vec<String>>,
    offered_multiple: f64,
    offered_rps: f64,
    requests: usize,
) -> OverloadRun {
    let interval = Duration::from_secs_f64(PACERS as f64 / offered_rps);
    let start = Instant::now();
    let threads: Vec<_> = (0..PACERS)
        .map(|t| {
            let addr = addr.to_string();
            let experiments = Arc::clone(experiments);
            std::thread::spawn(move || {
                let quota = requests / PACERS + usize::from(t < requests % PACERS);
                let first = start + interval.mul_f64(t as f64 / PACERS as f64);
                let mut ok: Vec<Duration> = Vec::with_capacity(quota);
                let (mut shed, mut errors) = (0usize, 0usize);
                for k in 0..quota {
                    let tick = first + interval.mul_f64(k as f64);
                    if let Some(wait) = tick.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let target = overload_target(&experiments, t + k * PACERS);
                    match overload_request(&addr, &target) {
                        Some((200, latency)) => ok.push(latency),
                        Some((503, _)) => shed += 1,
                        Some(_) | None => errors += 1,
                    }
                }
                (ok, shed, errors)
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    let (mut shed, mut errors) = (0usize, 0usize);
    for thread in threads {
        let (ok, s, e) = thread.join().expect("pacer thread");
        latencies.extend(ok);
        shed += s;
        errors += e;
    }
    let elapsed = start.elapsed().as_secs_f64();
    OverloadRun {
        offered_multiple,
        offered_rps,
        attempted_rps: requests as f64 / elapsed,
        goodput_rps: latencies.len() as f64 / elapsed,
        ok: latencies.len(),
        shed,
        errors,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
    }
}

fn main() {
    let scale = frost_bench::scale_from_env();
    println!("building store (scale {scale}) ...");
    let store = build_store(scale);
    let experiments = Arc::new(store.experiment_names(None));
    let dataset = store.dataset_names()[0].clone();
    let gold = store.gold_standard(&dataset).expect("gold set").clone();
    let state = Arc::new(ServerState::new(store));
    let options = ServeOptions {
        workers: 8,
        idle_timeout: Duration::from_secs(10),
        max_requests: usize::MAX,
        ..ServeOptions::default()
    };
    let handle = serve_with("127.0.0.1:0", Arc::clone(&state), options).expect("bind");
    println!("frostd state serving on {}", handle.addr());

    // Transport correctness spot-check: both transports must return
    // the same bytes for the same target.
    let probe = format!("/metrics?experiment={}", experiments[0]);
    let (_, one_shot) = http_get(&format!("http://{}{probe}", handle.addr())).expect("probe");
    let mut conn = Connection::open(&handle.addr().to_string()).expect("probe connect");
    let (_, kept) = conn.get(&probe).expect("probe get");
    assert_eq!(one_shot, kept, "transport modes must agree byte-for-byte");
    drop(conn);

    let threads = 4usize;
    let hot_requests = ((4_000f64) * scale).max(200.0) as usize;
    let cold_requests = ((600f64) * scale).max(60.0) as usize;
    // The cold key space (samples × x-metric × experiment) must cover
    // one full run, or "cold" requests would silently hit the cache.
    assert!(
        threads * cold_requests <= 211 * COLD_METRICS.len() * experiments.len(),
        "cold key space too small for this scale"
    );
    println!(
        "{threads} threads; {hot_requests} hot / {cold_requests} cold requests per thread per mode"
    );

    let modes: [&'static str; 3] = ["conn_per_request", "keepalive", "pipelined"];
    let mixes = [Mix::Hot, Mix::Cold, Mix::Mixed];
    let mut results: Vec<(&'static str, &'static str, f64)> = Vec::new();
    for mix in mixes {
        let requests = match mix {
            Mix::Hot => hot_requests,
            Mix::Cold | Mix::Mixed => cold_requests,
        };
        for mode in modes {
            match mix {
                // Re-setting the identical gold standard is a
                // result-preserving mutation: it clears the store's
                // internal diagram/matrix caches, and the generation
                // bump clears both HTTP tiers — every cold run
                // recomputes from scratch instead of replaying the
                // previous mode's entries.
                Mix::Cold | Mix::Mixed => state.with_store_mut(|s| {
                    s.set_gold_standard(&dataset, gold.clone()).expect("reset")
                }),
                // Warm the one hot entry so the hot mix measures the
                // response-byte path from the first request.
                Mix::Hot => {
                    let warm = target_for(mix, &experiments, requests, 0, 0);
                    let (status, _) =
                        http_get(&format!("http://{}{warm}", handle.addr())).expect("warm");
                    assert_eq!(status, 200);
                }
            }
            let rps = run_mode(&handle, mode, mix, &experiments, threads, requests);
            println!("  {:<8} {:<17} {rps:>10.0} req/s", mix.name(), mode);
            results.push((mix.name(), mode, rps));
        }
    }

    let rps_of = |mix: &str, mode: &str| -> f64 {
        results
            .iter()
            .find(|(m, md, _)| *m == mix && *md == mode)
            .map(|&(_, _, r)| r)
            .expect("measured above")
    };
    let hot_speedup = rps_of("hot", "keepalive") / rps_of("hot", "conn_per_request");
    let hot_pipeline_speedup = rps_of("hot", "pipelined") / rps_of("hot", "conn_per_request");
    let mixed_speedup = rps_of("mixed", "keepalive") / rps_of("mixed", "conn_per_request");
    println!(
        "keep-alive vs conn-per-request: hot {hot_speedup:.2}×, mixed {mixed_speedup:.2}× \
(pipelined hot {hot_pipeline_speedup:.2}×)"
    );
    // The render counter proves the hot path stayed serialization-free:
    // after warmup, hot-mix traffic is served entirely from the
    // response-byte tier.
    println!(
        "server counters: {} connections, {} JSON renders, {} response-cache hits",
        state.connections_accepted(),
        state.json_renders(),
        state.response_cache().hits()
    );
    if scale >= 0.05 {
        assert!(
            hot_speedup >= 2.0,
            "keep-alive must be ≥ 2× conn-per-request on the hot mix (got {hot_speedup:.2}×)"
        );
    }
    handle.shutdown();

    // ---- Overload phase: constrained server, paced floods. ----
    const OVERLOAD_WORKERS: usize = 2;
    const OVERLOAD_MAX_QUEUED: usize = 8;
    const OVERLOAD_DEADLINE_MS: u64 = 200;
    let overload_handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&state),
        ServeOptions {
            workers: OVERLOAD_WORKERS,
            max_queued: OVERLOAD_MAX_QUEUED,
            request_deadline: Some(Duration::from_millis(OVERLOAD_DEADLINE_MS)),
            idle_timeout: Duration::from_secs(10),
            max_requests: usize::MAX,
            ..ServeOptions::default()
        },
    )
    .expect("bind overload server");
    let overload_addr = overload_handle.addr().to_string();
    // Fresh caches per phase (same reset idiom as the cold mixes), so
    // every attempted key is a genuine compute-class request. The key
    // space per reset (~10k) comfortably covers each run's request
    // budget.
    let overload_requests = ((6_000f64) * scale).clamp(600.0, 9_600.0) as usize;
    let reset =
        || state.with_store_mut(|s| s.set_gold_standard(&dataset, gold.clone()).expect("reset"));
    // The probe replays the exact request sequence the paced runs use
    // (same count, same reset), so its mix of store-level series
    // computes vs cached renders matches what "1×" will actually see.
    reset();
    let capacity = overload_capacity(&overload_addr, &experiments, overload_requests);
    println!("overload capacity ({OVERLOAD_WORKERS} workers, closed loop): {capacity:>8.0} req/s");
    let mut overload_runs: Vec<OverloadRun> = Vec::new();
    for multiple in [1.0f64, 2.0] {
        reset();
        let run = run_overload(
            &overload_addr,
            &experiments,
            multiple,
            capacity * multiple,
            overload_requests,
        );
        println!(
            "  {multiple:.0}x offered {:>8.0} req/s (attempted {:>8.0}): goodput {:>8.0} req/s, \
{} ok / {} shed / {} errors, p50 {:.2} ms, p99 {:.2} ms",
            run.offered_rps,
            run.attempted_rps,
            run.goodput_rps,
            run.ok,
            run.shed,
            run.errors,
            run.p50_ms,
            run.p99_ms
        );
        assert!(run.ok > 0, "an overloaded server must still serve requests");
        overload_runs.push(run);
    }
    let goodput_ratio = overload_runs[1].goodput_rps / overload_runs[0].goodput_rps;
    println!("overload goodput at 2x vs 1x offered load: {goodput_ratio:.2}x");
    overload_handle.shutdown();

    // ---- High-connection phase: mostly-idle keep-alive herd. ----
    const HIGHCONN_WORKERS: usize = 4;
    const HIGHCONN_EVENT_THREADS: usize = 2;
    const HIGHCONN_ACTIVE_THREADS: usize = 4;
    // 8 000 connections at scale 1 (16k fds with the client side —
    // inside the usual 20k+ descriptor budget), smoke scales down.
    let herd_size = ((8_000f64) * scale).clamp(400.0, 8_000.0) as usize;
    let highconn_handle = serve_with(
        "127.0.0.1:0",
        Arc::clone(&state),
        ServeOptions {
            workers: HIGHCONN_WORKERS,
            event_threads: HIGHCONN_EVENT_THREADS,
            // The herd is idle on purpose; reaping it mid-measurement
            // would quietly shrink what the phase claims to measure.
            idle_timeout: Duration::from_secs(120),
            max_requests: usize::MAX,
            ..ServeOptions::default()
        },
    )
    .expect("bind highconn server");
    let highconn_addr = highconn_handle.addr().to_string();
    let hot_target = format!("/metrics?experiment={}", experiments[0]);
    let (status, _) = http_get(&format!("http://{highconn_addr}{hot_target}")).expect("warm");
    assert_eq!(status, 200);
    let active_requests = ((2_000f64) * scale).max(200.0) as usize;
    // Tail latency of the active subset alone, then under the herd:
    // the same-host ratio is the portable regression signal.
    let (alone_rps, alone_lat) = run_active_subset(
        &highconn_addr,
        &hot_target,
        HIGHCONN_ACTIVE_THREADS,
        active_requests,
    );
    let mut herd = IdleHerd::open(&highconn_addr, herd_size).expect("open idle herd");
    for index in [0, herd_size / 2, herd_size - 1] {
        let (status, _) = herd.probe(index, &hot_target).expect("herd probe");
        assert_eq!(status, 200);
    }
    let (herd_rps, herd_lat) = run_active_subset(
        &highconn_addr,
        &hot_target,
        HIGHCONN_ACTIVE_THREADS,
        active_requests,
    );
    let p99_penalty = percentile_ms(&herd_lat, 0.99) / percentile_ms(&alone_lat, 0.99).max(1e-3);
    println!(
        "highconn ({herd_size} idle connections, {HIGHCONN_EVENT_THREADS} event threads): \
active alone {alone_rps:>8.0} req/s p50 {:.3} p99 {:.3} p999 {:.3} ms; \
with herd {herd_rps:>8.0} req/s p50 {:.3} p99 {:.3} p999 {:.3} ms (p99 penalty {p99_penalty:.2}x)",
        percentile_ms(&alone_lat, 0.50),
        percentile_ms(&alone_lat, 0.99),
        percentile_ms(&alone_lat, 0.999),
        percentile_ms(&herd_lat, 0.50),
        percentile_ms(&herd_lat, 0.99),
        percentile_ms(&herd_lat, 0.999),
    );
    let highconn_entry = Value::object([
        ("connections".to_string(), Value::from(herd_size)),
        ("workers".to_string(), Value::from(HIGHCONN_WORKERS)),
        (
            "event_threads".to_string(),
            Value::from(HIGHCONN_EVENT_THREADS),
        ),
        (
            "active_threads".to_string(),
            Value::from(HIGHCONN_ACTIVE_THREADS),
        ),
        (
            "active_requests_per_thread".to_string(),
            Value::from(active_requests),
        ),
        ("alone".to_string(), active_entry(alone_rps, &alone_lat)),
        ("with_herd".to_string(), active_entry(herd_rps, &herd_lat)),
        ("p99_penalty_vs_alone".to_string(), Value::from(p99_penalty)),
    ]);
    drop(herd);
    highconn_handle.shutdown();

    // ---- Telemetry overhead phase: hot path, tracing on vs off. ----
    // Interleaved rounds (on, off, on, off, …) with min-of-rounds p50
    // per arm: scheduler noise moves whole rounds, the minimum of
    // several is what the hardware actually does. Both arms reuse the
    // warmed shared state, so they serve identical response bytes.
    const TELEMETRY_ROUNDS: usize = 3;
    const TELEMETRY_THREADS: usize = 4;
    let telemetry_requests = ((2_000f64) * scale).max(200.0) as usize;
    let telemetry_target = format!("/metrics?experiment={}", experiments[0]);
    let mut p50_on = f64::INFINITY;
    let mut p50_off = f64::INFINITY;
    for _round in 0..TELEMETRY_ROUNDS {
        for enabled in [true, false] {
            let handle = serve_with(
                "127.0.0.1:0",
                Arc::clone(&state),
                ServeOptions {
                    workers: 8,
                    idle_timeout: Duration::from_secs(10),
                    max_requests: usize::MAX,
                    telemetry: enabled,
                    ..ServeOptions::default()
                },
            )
            .expect("bind telemetry server");
            let addr = handle.addr().to_string();
            let (status, _) = http_get(&format!("http://{addr}{telemetry_target}")).expect("warm");
            assert_eq!(status, 200);
            let (_, latencies) = run_active_subset(
                &addr,
                &telemetry_target,
                TELEMETRY_THREADS,
                telemetry_requests,
            );
            let p50 = percentile_ms(&latencies, 0.50);
            if enabled {
                p50_on = p50_on.min(p50);
            } else {
                p50_off = p50_off.min(p50);
            }
            handle.shutdown();
        }
    }
    let telemetry_overhead_pct = (p50_on / p50_off.max(1e-9) - 1.0) * 100.0;
    println!(
        "telemetry overhead (hot p50, min of {TELEMETRY_ROUNDS} rounds): \
on {p50_on:.4} ms, off {p50_off:.4} ms ({telemetry_overhead_pct:+.2}%)"
    );
    if scale >= 0.05 {
        // 20 µs absolute grace: at smoke scale the hot p50 is tens of
        // microseconds, where one scheduler hiccup outweighs any
        // plausible instrumentation cost.
        assert!(
            p50_on <= p50_off * 1.05 + 0.02,
            "telemetry must cost ≤ 5% hot-path p50 \
(on {p50_on:.4} ms vs off {p50_off:.4} ms, {telemetry_overhead_pct:+.2}%)"
        );
    }

    let mut mode_entries = Vec::new();
    for (mix, mode, rps) in &results {
        mode_entries.push(Value::object([
            ("mix".to_string(), Value::from(*mix)),
            ("mode".to_string(), Value::from(*mode)),
            ("requests_per_second".to_string(), Value::from(*rps)),
        ]));
    }
    let doc = Value::object([
        ("scale".to_string(), Value::from(scale)),
        ("threads".to_string(), Value::from(threads)),
        (
            "hot_requests_per_thread".to_string(),
            Value::from(hot_requests),
        ),
        (
            "cold_requests_per_thread".to_string(),
            Value::from(cold_requests),
        ),
        ("pipeline_depth".to_string(), Value::from(PIPELINE_DEPTH)),
        ("modes".to_string(), Value::Array(mode_entries)),
        (
            "keepalive".to_string(),
            Value::object([
                (
                    "hot_speedup_vs_conn_per_request".to_string(),
                    Value::from(hot_speedup),
                ),
                (
                    "mixed_speedup_vs_conn_per_request".to_string(),
                    Value::from(mixed_speedup),
                ),
                (
                    "hot_pipelined_speedup_vs_conn_per_request".to_string(),
                    Value::from(hot_pipeline_speedup),
                ),
            ]),
        ),
        (
            "overload".to_string(),
            Value::object([
                ("workers".to_string(), Value::from(OVERLOAD_WORKERS)),
                ("max_queued".to_string(), Value::from(OVERLOAD_MAX_QUEUED)),
                (
                    "request_deadline_ms".to_string(),
                    Value::from(OVERLOAD_DEADLINE_MS),
                ),
                (
                    "capacity_requests_per_second".to_string(),
                    Value::from(capacity),
                ),
                (
                    "runs".to_string(),
                    Value::Array(
                        overload_runs
                            .iter()
                            .map(|run| {
                                Value::object([
                                    (
                                        "offered_multiple".to_string(),
                                        Value::from(run.offered_multiple),
                                    ),
                                    ("offered_rps".to_string(), Value::from(run.offered_rps)),
                                    ("attempted_rps".to_string(), Value::from(run.attempted_rps)),
                                    ("goodput_rps".to_string(), Value::from(run.goodput_rps)),
                                    ("ok".to_string(), Value::from(run.ok)),
                                    ("shed".to_string(), Value::from(run.shed)),
                                    ("errors".to_string(), Value::from(run.errors)),
                                    ("p50_ms".to_string(), Value::from(run.p50_ms)),
                                    ("p99_ms".to_string(), Value::from(run.p99_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "goodput_ratio_2x_vs_1x".to_string(),
                    Value::from(goodput_ratio),
                ),
            ]),
        ),
        ("highconn".to_string(), highconn_entry),
        (
            "telemetry".to_string(),
            Value::object([
                ("rounds".to_string(), Value::from(TELEMETRY_ROUNDS)),
                ("threads".to_string(), Value::from(TELEMETRY_THREADS)),
                (
                    "requests_per_thread".to_string(),
                    Value::from(telemetry_requests),
                ),
                ("p50_on_ms".to_string(), Value::from(p50_on)),
                ("p50_off_ms".to_string(), Value::from(p50_off)),
                (
                    "overhead_pct".to_string(),
                    Value::from(telemetry_overhead_pct),
                ),
            ]),
        ),
    ]);
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = match std::env::var("FROST_BENCH_OUT") {
        Ok(p) if std::path::Path::new(&p).is_absolute() => std::path::PathBuf::from(p),
        Ok(p) => workspace_root.join(p),
        Err(_) => workspace_root.join("BENCH_http.json"),
    };
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc)).expect("write bench json");
    println!("wrote {}", out_path.display());

    // Regression gate: same shape as the pairset/snapshot gates —
    // scale-matched baseline, −25% floor on the recorded hot-mix
    // keep-alive speedup (a same-host ratio, so fairly portable).
    if let Ok(baseline_env) = std::env::var("FROST_BENCH_BASELINE") {
        let mut baseline_path = std::path::PathBuf::from(&baseline_env);
        if !baseline_path.exists() {
            baseline_path = workspace_root.join(&baseline_env);
        }
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(&baseline_path).expect("read baseline json"),
        )
        .expect("parse baseline json");
        let recorded_scale = baseline.get("scale").and_then(Value::as_f64).unwrap_or(1.0);
        let recorded = baseline
            .get("keepalive")
            .and_then(|v| v.get("hot_speedup_vs_conn_per_request"))
            .and_then(Value::as_f64)
            .expect("baseline missing keepalive.hot_speedup_vs_conn_per_request");
        if !(recorded_scale / 1.5..=recorded_scale * 1.5).contains(&scale) {
            println!(
                "baseline gate skipped: baseline recorded at scale {recorded_scale}, this run at {scale}"
            );
        } else {
            let floor = recorded * 0.75;
            println!(
                "baseline gate (keepalive hot): {hot_speedup:.2}× vs recorded {recorded:.2}× (floor {floor:.2}×)"
            );
            if hot_speedup < floor {
                eprintln!(
                    "REGRESSION: keep-alive hot speedup {hot_speedup:.2}× fell more than 25% below the recorded {recorded:.2}×"
                );
                std::process::exit(1);
            }
            // Second gated metric: goodput retention when offered
            // load doubles past capacity. Paced loopback ratios are
            // noisier than the same-run speedup ratios (scheduler
            // contention moves both runs independently), so this gate
            // uses a −50% floor: it catches shedding collapse (a
            // thrashing server lands near 0.2×), not drift. Absent in
            // pre-overload baselines, so tolerate the missing key.
            match baseline
                .get("overload")
                .and_then(|v| v.get("goodput_ratio_2x_vs_1x"))
                .and_then(Value::as_f64)
            {
                None => println!("overload gate skipped: baseline has no overload entry"),
                Some(recorded) => {
                    let floor = recorded * 0.5;
                    println!(
                        "baseline gate (overload goodput 2x/1x): {goodput_ratio:.2}x vs recorded {recorded:.2}x (floor {floor:.2}x)"
                    );
                    if goodput_ratio < floor {
                        eprintln!(
                            "REGRESSION: overload goodput ratio {goodput_ratio:.2}x fell more than 50% below the recorded {recorded:.2}x"
                        );
                        std::process::exit(1);
                    }
                }
            }
            // Third gated metric: how much the idle herd inflates
            // active p99. Loopback tail latencies are the noisiest of
            // the gated ratios, so the ceiling is 3× the recorded
            // penalty: it catches per-request work scaling with
            // connection count (the C10K failure mode), not jitter.
            // Absent in pre-event-loop baselines — tolerate that.
            match baseline
                .get("highconn")
                .and_then(|v| v.get("p99_penalty_vs_alone"))
                .and_then(Value::as_f64)
            {
                None => println!("highconn gate skipped: baseline has no highconn entry"),
                Some(recorded) => {
                    let ceiling = recorded * 3.0;
                    println!(
                        "baseline gate (highconn p99 penalty): {p99_penalty:.2}x vs recorded {recorded:.2}x (ceiling {ceiling:.2}x)"
                    );
                    if p99_penalty > ceiling {
                        eprintln!(
                            "REGRESSION: idle-herd p99 penalty {p99_penalty:.2}x grew more than 3x past the recorded {recorded:.2}x"
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}
