//! Replication-path microbenchmarks: the codec work a replica does per
//! poll, separated from the HTTP transfer around it.
//!
//! * `scan_stream` — decoding a batch of CRC-framed WAL records into
//!   ops (the per-poll parse cost, linear in streamed bytes);
//! * `apply` — replaying decoded ops into a live store (the part that
//!   holds the replica's writer lock);
//! * `preamble` — encode/decode of the 36-byte stream preamble (pure
//!   fixed overhead, here to catch accidental regressions).
//!
//! Standalone (not part of the CI baselines). Run
//! `cargo bench -p frost-bench --bench replication`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frost_core::clustering::Clustering;
use frost_core::dataset::{Dataset, Experiment, Schema, ScoredPair};
use frost_server::replication::StreamPreamble;
use frost_storage::wal::{encode_frame, scan_stream, snapshot_id, WalOp};
use frost_storage::BenchmarkStore;

const RECORDS: u32 = 1_000;

fn seed_store() -> BenchmarkStore {
    let mut ds = Dataset::new("people", Schema::new(["name"]));
    for i in 0..RECORDS {
        ds.push_record(format!("r{i}"), [format!("person {i}")]);
    }
    let mut store = BenchmarkStore::new();
    store.add_dataset(ds).unwrap();
    let assignment: Vec<u32> = (0..RECORDS).map(|i| i / 2).collect();
    store
        .set_gold_standard("people", Clustering::from_assignment(&assignment))
        .unwrap();
    store
}

/// `n` imports of `pairs_per_op` scored pairs each — the record mix a
/// steady import loop ships.
fn import_ops(n: usize, pairs_per_op: usize) -> Vec<WalOp> {
    (0..n)
        .map(|i| {
            let pairs = (0..pairs_per_op).map(|p| {
                let a = ((i * pairs_per_op + p) % (RECORDS as usize - 1)) as u32;
                ScoredPair::scored((a, a + 1), 0.9)
            });
            let experiment = Experiment::new(format!("imp{i}"), pairs);
            WalOp::add_experiment("people", &experiment, None)
        })
        .collect()
}

fn stream_bytes(ops: &[WalOp]) -> Vec<u8> {
    let mut stream = Vec::new();
    for op in ops {
        stream.extend_from_slice(&encode_frame(op));
    }
    stream
}

fn bench_scan_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_scan_stream");
    for (label, n, pairs) in [("small_ops", 256, 8), ("large_ops", 32, 2_000)] {
        let stream = stream_bytes(&import_ops(n, pairs));
        group.bench_with_input(BenchmarkId::from_parameter(label), &stream, |b, stream| {
            b.iter(|| {
                let scan = scan_stream(stream).unwrap();
                assert_eq!(scan.consumed, stream.len());
                scan.ops.len()
            })
        });
    }
    group.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_apply");
    group.sample_size(20);
    for (label, n, pairs) in [("small_ops", 64, 8), ("large_ops", 8, 2_000)] {
        let ops = import_ops(n, pairs);
        group.bench_with_input(BenchmarkId::from_parameter(label), &ops, |b, ops| {
            b.iter(|| {
                let mut store = seed_store();
                for op in ops {
                    op.apply(&mut store).unwrap();
                }
                store
            })
        });
    }
    group.finish();
}

fn bench_preamble(c: &mut Criterion) {
    let preamble = StreamPreamble {
        primary: true,
        snapshot: snapshot_id(b"bench snapshot bytes"),
        wal_len: 123_456,
        records: 789,
    };
    let wire = preamble.encode();
    c.bench_function("replication_preamble_roundtrip", |b| {
        b.iter(|| StreamPreamble::decode(&wire).unwrap())
    });
}

criterion_group!(benches, bench_scan_stream, bench_apply, bench_preamble);
criterion_main!(benches);
