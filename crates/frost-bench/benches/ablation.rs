//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * duplicate-clustering algorithms (transitive closure vs center vs
//!   clique vs pivot vs star vs MCL) on the same match set;
//! * similarity measures on realistic value pairs (edit-based measures
//!   are quadratic in value length; token-based ones linear — the
//!   reason the SIGMOD-like matchers use token measures on long names);
//! * blocking strategies (candidate-set construction cost).
//!
//! Run `cargo bench -p frost-bench --bench ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frost_core::clustering::algorithms;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::{generate, GeneratorConfig};
use frost_matchers::blocking::{
    Blocker, BlockingKey, SortedNeighborhood, StandardBlocking, TokenBlocking,
};
use frost_matchers::similarity::Measure;

fn bench_clustering_algorithms(c: &mut Criterion) {
    let generated = generate(&GeneratorConfig::small("ablation", 2_000, 11));
    let experiment = synthetic_experiment("m", &generated.truth, 1_500, 0.8, 3);
    let pairs = experiment.pairs().to_vec();
    let n = generated.dataset.len();
    let mut group = c.benchmark_group("clustering_algorithms");
    group.sample_size(20);
    group.bench_function("transitive_closure", |b| {
        b.iter(|| algorithms::connected_components(n, &pairs))
    });
    group.bench_function("center", |b| {
        b.iter(|| algorithms::center_clustering(n, &pairs))
    });
    group.bench_function("merge_center", |b| {
        b.iter(|| algorithms::merge_center_clustering(n, &pairs))
    });
    group.bench_function("greedy_clique", |b| {
        b.iter(|| algorithms::greedy_clique_clustering(n, &pairs))
    });
    group.bench_function("pivot", |b| {
        b.iter(|| algorithms::pivot_clustering(n, &pairs, 1))
    });
    group.bench_function("star", |b| {
        b.iter(|| algorithms::star_clustering(n, &pairs))
    });
    group.bench_function("markov", |b| {
        b.iter(|| algorithms::markov_clustering(n, &pairs, 2.0, 256))
    });
    group.finish();
}

fn bench_similarity_measures(c: &mut Criterion) {
    let short = ("anna schmidt", "anna schmitd");
    let long = (
        "brilliant fast notebook computer with retina display and extended battery option",
        "briliant fast notebok computer retina display with extended batery options",
    );
    let mut group = c.benchmark_group("similarity_measures");
    for (label, (a, b)) in [("short", short), ("long", long)] {
        for m in [
            Measure::Levenshtein,
            Measure::JaroWinkler,
            Measure::TokenJaccard,
            Measure::MongeElkan,
            Measure::Trigram,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{m:?}"), label),
                &(a, b),
                |bench, (a, b)| bench.iter(|| m.compute(a, b)),
            );
        }
    }
    group.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let generated = generate(&GeneratorConfig::small("blocking", 3_000, 23));
    let ds = &generated.dataset;
    let mut group = c.benchmark_group("blocking");
    group.sample_size(20);
    group.bench_function("standard_first_token", |b| {
        let blocker = StandardBlocking::new(BlockingKey::FirstToken("name".into()));
        b.iter(|| blocker.candidates(ds))
    });
    group.bench_function("sorted_neighborhood_w10", |b| {
        let blocker = SortedNeighborhood {
            key: BlockingKey::Attribute("name".into()),
            window: 10,
        };
        b.iter(|| blocker.candidates(ds))
    });
    group.bench_function("token_blocking", |b| {
        let blocker = TokenBlocking {
            attributes: vec!["name".into()],
            max_token_frequency: 60,
        };
        b.iter(|| blocker.candidates(ds))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_clustering_algorithms,
    bench_similarity_measures,
    bench_blocking
);
criterion_main!(benches);
