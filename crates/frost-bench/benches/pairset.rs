//! Pair-set engine benchmarks: the two-level `RoaringPairSet` vs the
//! single-level `ChunkedPairSet` vs packed `PairSet` vs the seed's
//! `HashSet<RecordPair>` baseline, plus galloping-threshold tuning,
//! memory footprints, the rayon-sharded diagram sweep, and
//! matching-pipeline core scaling — the measurements behind this
//! repo's `BENCH_pairset.json`.
//!
//! ```text
//! cargo bench -p frost-bench --bench pairset            # smoke scale
//! FROST_SCALE=1 cargo bench -p frost-bench --bench pairset   # full sizes
//! ```
//!
//! Sections:
//!
//! 1. **Set operations** on three workloads × four engines: union,
//!    intersection, difference, 3-set Venn regions, expression-tree TP
//!    and confusion-matrix TP counting. Workloads: `uniform-250k` and
//!    `uniform-2.5m` (uniformly sparse chunks — packed's home turf and
//!    the roaring engine's target shape) and `dense-2.5m` (few `lo`
//!    ids with thousands of partners each — bitmap containers dominate
//!    at full scale).
//! 2. **Galloping-ratio tuning**: scalar merge vs galloping
//!    intersection head-to-head across size ratios; the crossover
//!    backs the `GALLOP_RATIO` constant all engines share. The
//!    **equal-merge** subsection adds the four-lane column: the
//!    production unrolled 4-lane equal-size intersection
//!    (`PairSet::intersection_len`) against the two-lane bidirectional
//!    merge on identical equal-size data.
//! 3. **Memory footprint**: bytes/pair for each engine and workload
//!    (hash estimated from hashbrown's bucket layout).
//! 4. **Sparse-workload verdict** (`sparse_roaring` in the JSON): on
//!    the uniform-2.5m shape the two-level engine must hold ≤ 2.4
//!    bytes/pair *and* an intersection/union/venn3 geomean ≥ 1× vs
//!    packed — the claim that motivated the second chunk level.
//! 5. **Diagram sweep scaling**: `confusion_series_multi` over six
//!    experiments at 1/2/4 rayon threads.
//! 6. **Pipeline scaling**: one full matching pipeline at 1, 2 and all
//!    hardware threads.
//!
//! Regression gate: when `FROST_BENCH_BASELINE=<path>` is set, the run
//! compares its packed-vs-hash geomean (uniform-250k) and its sparse
//! roaring-vs-packed geomean (uniform-2.5m) against the recorded ones
//! and exits nonzero on a >25% regression of either.
//! `FROST_BENCH_OUT=<path>` redirects the JSON (default:
//! `BENCH_pairset.json` at the workspace root).

use criterion::{black_box, Criterion};
use frost_core::dataset::{ChunkedPairSet, Experiment, PairSet, RecordPair, RoaringPairSet};
use frost_core::diagram::DiagramEngine;
use frost_core::explore::setops::{venn_regions, SetExpression};
use frost_core::metrics::confusion::{total_pairs, ConfusionMatrix};
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::{generate, GeneratorConfig};
use frost_matchers::blocking::TokenBlocking;
use frost_matchers::decision::threshold::WeightedAverage;
use frost_matchers::features::Comparator;
use frost_matchers::pipeline::{ClusteringMethod, MatchingPipeline};
use frost_matchers::similarity::Measure;
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Reference (seed) implementations on `HashSet<RecordPair>`.
mod hash_baseline {
    use super::*;

    pub fn venn(sets: &[HashSet<RecordPair>]) -> Vec<(u32, usize)> {
        let mut membership_of: HashMap<RecordPair, u32> = HashMap::new();
        for (i, set) in sets.iter().enumerate() {
            for &p in set {
                *membership_of.entry(p).or_insert(0) |= 1 << i;
            }
        }
        let mut by_mask: HashMap<u32, usize> = HashMap::new();
        for (_, mask) in membership_of {
            *by_mask.entry(mask).or_insert(0) += 1;
        }
        let mut out: Vec<(u32, usize)> = by_mask.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The seed's `SetExpression::evaluate` for `S0 ∩ S1`: leaf sets
    /// are cloned, then intersected — replicated verbatim as the
    /// baseline for the expression-level benchmark.
    pub fn expression_tp(universe: &[HashSet<RecordPair>]) -> HashSet<RecordPair> {
        let sa = universe[0].clone();
        let sb = universe[1].clone();
        sa.intersection(&sb).copied().collect()
    }

    pub fn confusion(
        e: &HashSet<RecordPair>,
        g: &HashSet<RecordPair>,
        total: u64,
    ) -> ConfusionMatrix {
        let tp = e.intersection(g).count() as u64;
        ConfusionMatrix::new(
            tp,
            e.len() as u64 - tp,
            g.len() as u64 - tp,
            total - e.len() as u64 - (g.len() as u64 - tp),
        )
    }

    /// Estimated heap bytes of a `HashSet<RecordPair>`: hashbrown
    /// allocates `buckets × (payload + 1 control byte)` with a 7/8
    /// load factor and power-of-two bucket counts.
    pub fn estimated_heap_bytes(len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let buckets = (len * 8 / 7).next_power_of_two().max(8);
        buckets * (std::mem::size_of::<RecordPair>() + 1)
    }
}

/// One benchmark workload: the same three pair sets in all four
/// representations.
struct Workload {
    name: &'static str,
    records: usize,
    packed: [PairSet; 3],
    chunked: [ChunkedPairSet; 3],
    roaring: [RoaringPairSet; 3],
    hash: [HashSet<RecordPair>; 3],
}

impl Workload {
    fn from_packed(name: &'static str, records: usize, sets: [Vec<u64>; 3]) -> Self {
        let chunked = [
            ChunkedPairSet::from_sorted_packed(sets[0].clone()),
            ChunkedPairSet::from_sorted_packed(sets[1].clone()),
            ChunkedPairSet::from_sorted_packed(sets[2].clone()),
        ];
        let roaring = [
            RoaringPairSet::from_sorted_packed(sets[0].clone()),
            RoaringPairSet::from_sorted_packed(sets[1].clone()),
            RoaringPairSet::from_sorted_packed(sets[2].clone()),
        ];
        let hash = sets.each_ref().map(|v| {
            v.iter()
                .map(|&x| RecordPair::from(((x >> 32) as u32, x as u32)))
                .collect::<HashSet<RecordPair>>()
        });
        let packed = sets.map(PairSet::from_sorted_packed);
        Self {
            name,
            records,
            packed,
            chunked,
            roaring,
            hash,
        }
    }
}

/// xoshiro-ish deterministic stream for workload construction.
fn next_rand(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A dense, chunk-skewed set: `lo_count` chunks over `records` records,
/// each with ~`per_lo` partners — above the 4096 container threshold at
/// full scale, so bitmap kernels carry the set operations.
fn dense_set(records: u32, lo_count: u32, per_lo: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    let mut packed = Vec::with_capacity(lo_count as usize * per_lo);
    for lo in 0..lo_count {
        let span = records - lo - 1;
        let mut his: Vec<u32> = (0..per_lo * 5 / 4)
            .map(|_| lo + 1 + (next_rand(&mut state) % span as u64) as u32)
            .collect();
        his.sort_unstable();
        his.dedup();
        his.truncate(per_lo);
        packed.extend(his.into_iter().map(|hi| ((lo as u64) << 32) | hi as u64));
    }
    packed
}

fn mean_of(c: &Criterion, id: &str) -> f64 {
    c.results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("missing bench result {id}"))
        .mean_ns
}

/// Ops measured per workload and engine.
const OPS: [&str; 6] = [
    "union",
    "intersection",
    "difference",
    "venn3",
    "expression_tp",
    "confusion",
];

fn bench_workload(c: &mut Criterion, w: &Workload) {
    let total = total_pairs(w.records);
    let mut g = c.benchmark_group(format!("setops-{}", w.name));
    let (pa, pb, pt) = (&w.packed[0], &w.packed[1], &w.packed[2]);
    let (ca, cb, ct) = (&w.chunked[0], &w.chunked[1], &w.chunked[2]);
    let (ra, rb, rt) = (&w.roaring[0], &w.roaring[1], &w.roaring[2]);
    let (ha, hb, ht) = (&w.hash[0], &w.hash[1], &w.hash[2]);

    g.bench_function("union/packed", |b| b.iter(|| black_box(pa.union(pb))));
    g.bench_function("union/chunked", |b| b.iter(|| black_box(ca.union(cb))));
    g.bench_function("union/roaring", |b| b.iter(|| black_box(ra.union(rb))));
    g.bench_function("union/hash", |b| {
        b.iter(|| black_box(ha.union(hb).copied().collect::<HashSet<_>>()))
    });

    g.bench_function("intersection/packed", |b| {
        b.iter(|| black_box(pa.intersection(pb)))
    });
    g.bench_function("intersection/chunked", |b| {
        b.iter(|| black_box(ca.intersection(cb)))
    });
    g.bench_function("intersection/roaring", |b| {
        b.iter(|| black_box(ra.intersection(rb)))
    });
    g.bench_function("intersection/hash", |b| {
        b.iter(|| black_box(ha.intersection(hb).copied().collect::<HashSet<_>>()))
    });

    g.bench_function("difference/packed", |b| {
        b.iter(|| black_box(pa.difference(pb)))
    });
    g.bench_function("difference/chunked", |b| {
        b.iter(|| black_box(ca.difference(cb)))
    });
    g.bench_function("difference/roaring", |b| {
        b.iter(|| black_box(ra.difference(rb)))
    });
    g.bench_function("difference/hash", |b| {
        b.iter(|| black_box(ha.difference(hb).copied().collect::<HashSet<_>>()))
    });

    let packed_sets = [pa.clone(), pb.clone(), pt.clone()];
    let chunked_sets = [ca.clone(), cb.clone(), ct.clone()];
    let roaring_sets = [ra.clone(), rb.clone(), rt.clone()];
    let hash_sets = [ha.clone(), hb.clone(), ht.clone()];
    g.bench_function("venn3/packed", |b| {
        b.iter(|| black_box(venn_regions(&packed_sets)))
    });
    g.bench_function("venn3/chunked", |b| {
        b.iter(|| black_box(venn_regions(&chunked_sets)))
    });
    g.bench_function("venn3/roaring", |b| {
        b.iter(|| black_box(venn_regions(&roaring_sets)))
    });
    g.bench_function("venn3/hash", |b| {
        b.iter(|| black_box(hash_baseline::venn(&hash_sets)))
    });

    // The §4.1 exploration API as the seed shipped it: expression trees
    // whose leaves clone their input sets (the packed/chunked/roaring
    // engines borrow leaves instead).
    let expr = SetExpression::set(0).intersection(SetExpression::set(1));
    let packed_universe = vec![pa.clone(), pb.clone()];
    let chunked_universe = vec![ca.clone(), cb.clone()];
    let roaring_universe = vec![ra.clone(), rb.clone()];
    let hash_universe = vec![ha.clone(), hb.clone()];
    g.bench_function("expression_tp/packed", |b| {
        b.iter(|| black_box(expr.evaluate(&packed_universe)))
    });
    g.bench_function("expression_tp/chunked", |b| {
        b.iter(|| black_box(expr.evaluate(&chunked_universe)))
    });
    g.bench_function("expression_tp/roaring", |b| {
        b.iter(|| black_box(expr.evaluate(&roaring_universe)))
    });
    g.bench_function("expression_tp/hash", |b| {
        b.iter(|| black_box(hash_baseline::expression_tp(&hash_universe)))
    });

    g.bench_function("confusion/packed", |b| {
        b.iter(|| black_box(ConfusionMatrix::from_pair_sets(pa, pt, total)))
    });
    g.bench_function("confusion/chunked", |b| {
        b.iter(|| black_box(ConfusionMatrix::from_pair_sets(ca, ct, total)))
    });
    g.bench_function("confusion/roaring", |b| {
        b.iter(|| black_box(ConfusionMatrix::from_pair_sets(ra, rt, total)))
    });
    g.bench_function("confusion/hash", |b| {
        b.iter(|| black_box(hash_baseline::confusion(ha, ht, total)))
    });
    g.finish();

    // Cross-check: identical results on all four representations.
    let pv: Vec<(u32, usize)> = venn_regions(&packed_sets)
        .iter()
        .map(|r| (r.membership, r.pairs.len()))
        .collect();
    let cv: Vec<(u32, usize)> = venn_regions(&chunked_sets)
        .iter()
        .map(|r| (r.membership, r.pairs.len()))
        .collect();
    let rv: Vec<(u32, usize)> = venn_regions(&roaring_sets)
        .iter()
        .map(|r| (r.membership, r.pairs.len()))
        .collect();
    let hv = hash_baseline::venn(&hash_sets);
    assert_eq!(pv, hv, "venn mismatch packed vs hash on {}", w.name);
    assert_eq!(pv, cv, "venn mismatch packed vs chunked on {}", w.name);
    assert_eq!(pv, rv, "venn mismatch packed vs roaring on {}", w.name);
    assert_eq!(
        ConfusionMatrix::from_pair_sets(pa, pt, total),
        hash_baseline::confusion(ha, ht, total),
    );
    assert_eq!(
        ConfusionMatrix::from_pair_sets(pa, pt, total),
        ConfusionMatrix::from_pair_sets(ca, ct, total),
    );
    assert_eq!(
        ConfusionMatrix::from_pair_sets(pa, pt, total),
        ConfusionMatrix::from_pair_sets(ra, rt, total),
    );
    assert_eq!(ca.union(cb).to_pair_set(), pa.union(pb));
    assert_eq!(ca.intersection(cb).to_pair_set(), pa.intersection(pb));
    assert_eq!(ca.difference(cb).to_pair_set(), pa.difference(pb));
    assert_eq!(ra.union(rb).to_pair_set(), pa.union(pb));
    assert_eq!(ra.intersection(rb).to_pair_set(), pa.intersection(pb));
    assert_eq!(ra.difference(rb).to_pair_set(), pa.difference(pb));
}

/// Local copies of the two intersection kernels, so the crossover can
/// be measured on *both* sides of the production `GALLOP_RATIO` switch
/// (the library always picks one path per ratio). The merge side is
/// the production engine's bidirectional two-lane merge, not a plain
/// two-pointer loop — comparing galloping against a weaker merge would
/// bias the crossover downward.
mod gallop_lab {
    pub fn merge_count(small: &[u64], large: &[u64]) -> usize {
        let (mut fwd, mut back) = (0usize, 0usize);
        let (mut i, mut j) = (0usize, 0usize);
        let (mut p, mut q) = (small.len(), large.len());
        while i < p && j < q {
            let (x, y) = (small[i], large[j]);
            fwd += usize::from(x == y);
            i += usize::from(x <= y);
            j += usize::from(y <= x);
            if i >= p || j >= q {
                break;
            }
            let (u, v) = (small[p - 1], large[q - 1]);
            back += usize::from(u == v);
            p -= usize::from(u >= v);
            q -= usize::from(v >= u);
        }
        fwd + back
    }

    pub fn gallop_count(small: &[u64], large: &[u64]) -> usize {
        let mut n = 0usize;
        let mut base = 0usize;
        for &x in small {
            if base >= large.len() {
                break;
            }
            let mut step = 1usize;
            let mut win_lo = base;
            let mut hi = base;
            while hi < large.len() && large[hi] < x {
                win_lo = hi + 1;
                hi += step;
                step <<= 1;
            }
            let win_hi = if hi < large.len() {
                hi + 1
            } else {
                large.len()
            };
            match large[win_lo..win_hi].binary_search(&x) {
                Ok(at) => {
                    n += 1;
                    base = win_lo + at + 1;
                }
                Err(at) => base = win_lo + at,
            }
        }
        n
    }
}

fn main() {
    let scale: f64 = std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let n_records = ((60_000f64) * scale).max(2_000.0) as usize;
    let n_pairs = ((250_000f64) * scale).max(10_000.0) as usize;
    let n_pairs_big = ((2_500_000f64) * scale).max(50_000.0) as usize;

    // Workloads 1+2: uniformly sparse synthetic matcher output.
    println!("generating workloads (scale {scale}) ...");
    let generated = generate(&GeneratorConfig::small("pairset-bench", n_records, 17));
    let truth = &generated.truth;
    let truth_packed: Vec<u64> = {
        let t: PairSet = truth.intra_pairs().collect();
        t.as_packed().to_vec()
    };
    let mk_uniform = |name: &'static str, pairs: usize| -> Workload {
        let a = synthetic_experiment("a", truth, pairs, 0.6, 1);
        let b = synthetic_experiment("b", truth, pairs, 0.6, 2);
        Workload::from_packed(
            name,
            n_records,
            [
                a.pair_set().as_packed().to_vec(),
                b.pair_set().as_packed().to_vec(),
                truth_packed.clone(),
            ],
        )
    };
    let uniform_small = mk_uniform("uniform-250k", n_pairs);
    let uniform_big = mk_uniform("uniform-2.5m", n_pairs_big);

    // Workload 3: dense chunk-skewed sets. At full scale each chunk
    // holds ~5000 partners — above the 4096 threshold, so both
    // operand sides are bitmap containers.
    let dense_records = ((20_000f64) * scale.max(0.25)) as u32;
    let dense_lo = 500u32.min(dense_records / 4);
    let per_lo = ((5_000f64) * scale).max(256.0) as usize;
    let dense = Workload::from_packed(
        "dense-2.5m",
        dense_records as usize,
        [
            dense_set(dense_records, dense_lo, per_lo, 0xD5A1),
            dense_set(dense_records, dense_lo, per_lo, 0xB0B2),
            dense_set(dense_records, dense_lo, per_lo, 0x7EE3),
        ],
    );
    for w in [&uniform_small, &uniform_big, &dense] {
        println!(
            "  {:<13} |A| = {}, |B| = {}, |C| = {}  (bitmap chunks in A: chunked {}/{}, roaring {}/{})",
            w.name,
            w.packed[0].len(),
            w.packed[1].len(),
            w.packed[2].len(),
            w.chunked[0].bitmap_chunk_count(),
            w.chunked[0].chunk_count(),
            w.roaring[0].bitmap_chunk_count(),
            w.roaring[0].chunk_count(),
        );
    }

    let mut c = Criterion::default().measurement_time(std::time::Duration::from_millis(700));
    for w in [&uniform_small, &uniform_big, &dense] {
        bench_workload(&mut c, w);
    }

    // Section 2: galloping-ratio tuning. Fixed 4096-needle small side
    // against larger sides at increasing ratios; both kernels timed on
    // the same data. Half the needles are present in the large side,
    // half absent — a skewed intersection's realistic hit mix.
    let gallop_ratios = [2usize, 4, 8, 16, 32, 64];
    {
        let mut g = c.benchmark_group("gallop_tuning");
        let small_n = 4_096usize;
        for &ratio in &gallop_ratios {
            let mut state = 0x5EEDu64;
            let large_n = small_n * ratio;
            let mut large: Vec<u64> = (0..large_n)
                .map(|_| (next_rand(&mut state) % (large_n as u64 * 16)) | 1)
                .collect();
            large.sort_unstable();
            large.dedup();
            let mut small: Vec<u64> = large
                .iter()
                .step_by(ratio * 2)
                .copied()
                // Even values never occur in `large`: guaranteed misses.
                .flat_map(|x| [x, x + 1])
                .collect();
            small.sort_unstable();
            small.dedup();
            g.bench_function(format!("merge/r{ratio}").as_str(), |b| {
                b.iter(|| black_box(gallop_lab::merge_count(&small, &large)))
            });
            g.bench_function(format!("gallop/r{ratio}").as_str(), |b| {
                b.iter(|| black_box(gallop_lab::gallop_count(&small, &large)))
            });
        }
        g.finish();
    }

    // Section 2b: equal-size merge — the two-lane bidirectional merge
    // vs the production four-lane merge (PairSet::intersection_len
    // dispatches to it at near-equal sizes) on identical data with a
    // ~50% hit rate. Sizes are fixed (the kernel is data-shape
    // independent); CRITERION_MEASUREMENT_MS keeps smoke runs quick.
    let equal_sizes = [4_096usize, 32_768, 262_144];
    {
        let mut g = c.benchmark_group("equal_merge");
        for &n in &equal_sizes {
            let mut state = 0xEAA1u64 ^ n as u64;
            let mut draw = |exclude_parity: u64| -> Vec<u64> {
                let mut v: Vec<u64> = (0..n * 5 / 4)
                    .map(|_| (next_rand(&mut state) % (n as u64 * 8)) * 2 + exclude_parity)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v.truncate(n);
                v
            };
            // ~half the elements shared, half odd-parity (guaranteed
            // misses) — an equal-size intersection's realistic mix.
            let shared = draw(0);
            let mk = |state: &mut u64, shared: &[u64]| -> Vec<u64> {
                let mut v: Vec<u64> = shared[..n / 2].to_vec();
                v.extend((0..n / 2).map(|_| (next_rand(state) % (n as u64 * 8)) * 2 + 1));
                v.sort_unstable();
                v.dedup();
                v
            };
            let a = mk(&mut state, &shared);
            let b = mk(&mut state, &shared);
            let (pa, pb) = (
                PairSet::from_sorted_packed(a.clone()),
                PairSet::from_sorted_packed(b.clone()),
            );
            assert_eq!(
                pa.intersection_len(&pb),
                gallop_lab::merge_count(&a, &b),
                "four-lane and two-lane counts must agree"
            );
            g.bench_function(format!("two_lane/n{n}").as_str(), |bch| {
                bch.iter(|| black_box(gallop_lab::merge_count(&a, &b)))
            });
            g.bench_function(format!("four_lane/n{n}").as_str(), |bch| {
                bch.iter(|| black_box(pa.intersection_len(&pb)))
            });
        }
        g.finish();
    }

    // Section 4: diagram sweep scaling — six independent experiments
    // on one dataset, swept via confusion_series_multi at 1/2/4 rayon
    // threads (the vendored rayon re-reads RAYON_NUM_THREADS per
    // call). On a single-CPU host the extra threads are
    // oversubscribed and the speedup stays ≈ 1.
    let sweep_records = ((12_000f64) * scale).max(2_000.0) as usize;
    let sweep_gen = generate(&GeneratorConfig::small("sweep-bench", sweep_records, 29));
    let sweep_pairs = ((40_000f64) * scale).max(5_000.0) as usize;
    let sweep_exps: Vec<Experiment> = (0..6)
        .map(|i| synthetic_experiment(format!("s{i}"), &sweep_gen.truth, sweep_pairs, 0.7, 40 + i))
        .collect();
    let sweep_refs: Vec<&Experiment> = sweep_exps.iter().collect();
    let sweep_s = 100;
    let mut sweep_times: Vec<(usize, f64)> = Vec::new();
    let mut sweep_reference: Option<Vec<Vec<frost_core::diagram::DiagramPoint>>> = None;
    for threads in [1usize, 2, 4] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        // Warm-up, then best-of-3 wall clock.
        let _ = DiagramEngine::Optimized.confusion_series_multi(
            sweep_records,
            &sweep_gen.truth,
            &sweep_refs,
            sweep_s,
        );
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let out = DiagramEngine::Optimized.confusion_series_multi(
                sweep_records,
                &sweep_gen.truth,
                &sweep_refs,
                sweep_s,
            );
            best = best.min(t.elapsed().as_secs_f64());
            match &sweep_reference {
                None => sweep_reference = Some(out),
                Some(r) => assert_eq!(r, &out, "thread count changed sweep results"),
            }
        }
        println!(
            "diagram sweep (6 experiments × {sweep_s} samples) {threads:>2} thread(s): {best:.3}s"
        );
        sweep_times.push((threads, best));
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // Section 5: pipeline scaling across cores.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pipe_records = ((12_000f64) * scale).max(1_000.0) as usize;
    let pipe_gen = generate(&GeneratorConfig::small("pipe-bench", pipe_records, 23));
    let pipeline = MatchingPipeline {
        name: "scaling".into(),
        preparer: None,
        blocker: Box::new(TokenBlocking {
            attributes: vec!["name".into(), "description".into()],
            max_token_frequency: 80,
        }),
        model: Box::new(WeightedAverage::uniform(
            [
                Comparator::new("name", Measure::JaroWinkler),
                Comparator::new("description", Measure::TokenJaccard),
                Comparator::new("category", Measure::Exact),
            ],
            0.75,
        )),
        clustering: ClusteringMethod::TransitiveClosure,
    };
    // Always exercise 1/2/4 threads (oversubscribed on small hosts;
    // speedups only appear with real cores), plus all hardware threads
    // when more exist.
    let mut thread_counts = vec![1usize, 2, 4];
    if hw > 4 {
        thread_counts.push(hw);
    }
    let mut pipeline_times: Vec<(usize, f64, usize)> = Vec::new();
    let mut reference: Option<Experiment> = None;
    for threads in thread_counts {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let start = Instant::now();
        let run = pipeline.run(&pipe_gen.dataset);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "pipeline.run {threads:>2} thread(s): {secs:.3}s  ({} candidates, {} matches)",
            run.candidates.len(),
            run.experiment.len()
        );
        pipeline_times.push((threads, secs, run.candidates.len()));
        match &reference {
            None => reference = Some(run.experiment),
            Some(r) => assert_eq!(
                r.pair_set(),
                run.experiment.pair_set(),
                "thread count changed the result"
            ),
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // ---- Summaries + BENCH_pairset.json ----
    let mut workload_entries = Vec::new();
    let mut op_entries = Vec::new();
    let mut memory_entries = Vec::new();
    let mut geomean_250k_log = 0.0f64; // packed vs hash, uniform-250k (CI gate)
    let mut dense_chunked_vs_packed_log = 0.0f64;
    let mut dense_core_ops = 0usize;
    // Sparse verdict: roaring vs packed and vs chunked on the
    // uniform-2.5m shape, over the ops the ISSUE names.
    let mut sparse_roaring_vs_packed_log = 0.0f64;
    let mut sparse_roaring_vs_chunked_log = 0.0f64;
    let mut sparse_core_ops = 0usize;
    for w in [&uniform_small, &uniform_big, &dense] {
        workload_entries.push(Value::object([
            ("name".to_string(), Value::from(w.name)),
            ("records".to_string(), Value::from(w.records)),
            ("pairs_per_set".to_string(), Value::from(w.packed[0].len())),
            (
                "bitmap_chunks".to_string(),
                Value::from(w.chunked[0].bitmap_chunk_count()),
            ),
            (
                "chunks".to_string(),
                Value::from(w.chunked[0].chunk_count()),
            ),
            (
                "roaring_bitmap_chunks".to_string(),
                Value::from(w.roaring[0].bitmap_chunk_count()),
            ),
            (
                "roaring_chunks".to_string(),
                Value::from(w.roaring[0].chunk_count()),
            ),
        ]));
        println!("\n[{}] speedups vs hash baseline:", w.name);
        for op in OPS {
            let hash_ns = mean_of(&c, &format!("setops-{}/{op}/hash", w.name));
            let packed_ns = mean_of(&c, &format!("setops-{}/{op}/packed", w.name));
            let chunked_ns = mean_of(&c, &format!("setops-{}/{op}/chunked", w.name));
            let roaring_ns = mean_of(&c, &format!("setops-{}/{op}/roaring", w.name));
            let packed_speedup = hash_ns / packed_ns;
            let chunked_speedup = hash_ns / chunked_ns;
            let roaring_speedup = hash_ns / roaring_ns;
            let chunked_vs_packed = packed_ns / chunked_ns;
            let roaring_vs_packed = packed_ns / roaring_ns;
            if w.name == "uniform-250k" {
                geomean_250k_log += packed_speedup.ln();
            }
            if w.name == "dense-2.5m" && matches!(op, "intersection" | "venn3" | "confusion") {
                dense_chunked_vs_packed_log += chunked_vs_packed.ln();
                dense_core_ops += 1;
            }
            if w.name == "uniform-2.5m" && matches!(op, "intersection" | "union" | "venn3") {
                sparse_roaring_vs_packed_log += roaring_vs_packed.ln();
                sparse_roaring_vs_chunked_log += (chunked_ns / roaring_ns).ln();
                sparse_core_ops += 1;
            }
            println!(
                "  {op:<14} packed {packed_speedup:>6.2}×  chunked {chunked_speedup:>6.2}×  roaring {roaring_speedup:>6.2}×  (roaring/packed {roaring_vs_packed:>5.2}×)"
            );
            op_entries.push(Value::object([
                ("workload".to_string(), Value::from(w.name)),
                ("op".to_string(), Value::from(op)),
                ("hash_ns".to_string(), Value::from(hash_ns)),
                ("pairset_ns".to_string(), Value::from(packed_ns)),
                ("chunked_ns".to_string(), Value::from(chunked_ns)),
                ("roaring_ns".to_string(), Value::from(roaring_ns)),
                ("speedup".to_string(), Value::from(packed_speedup)),
                ("chunked_speedup".to_string(), Value::from(chunked_speedup)),
                ("roaring_speedup".to_string(), Value::from(roaring_speedup)),
                (
                    "chunked_vs_packed".to_string(),
                    Value::from(chunked_vs_packed),
                ),
                (
                    "roaring_vs_packed".to_string(),
                    Value::from(roaring_vs_packed),
                ),
            ]));
        }
        // Memory footprint.
        let pairs = w.packed[0].len().max(1) as f64;
        let packed_bpp = w.packed[0].heap_bytes() as f64 / pairs;
        let chunked_bpp = w.chunked[0].heap_bytes() as f64 / pairs;
        let roaring_bpp = w.roaring[0].heap_bytes() as f64 / pairs;
        let hash_bpp = hash_baseline::estimated_heap_bytes(w.hash[0].len()) as f64 / pairs;
        println!(
            "  bytes/pair     packed {packed_bpp:>6.2}  chunked {chunked_bpp:>6.2}  roaring {roaring_bpp:>6.2}  hash ~{hash_bpp:>6.2}"
        );
        memory_entries.push(Value::object([
            ("workload".to_string(), Value::from(w.name)),
            ("packed_bytes_per_pair".to_string(), Value::from(packed_bpp)),
            (
                "chunked_bytes_per_pair".to_string(),
                Value::from(chunked_bpp),
            ),
            (
                "roaring_bytes_per_pair".to_string(),
                Value::from(roaring_bpp),
            ),
            (
                "hash_bytes_per_pair_estimated".to_string(),
                Value::from(hash_bpp),
            ),
            (
                "chunked_vs_packed_ratio".to_string(),
                Value::from(chunked_bpp / packed_bpp),
            ),
            (
                "roaring_vs_packed_ratio".to_string(),
                Value::from(roaring_bpp / packed_bpp),
            ),
        ]));
    }
    let geomean = (geomean_250k_log / OPS.len() as f64).exp();
    let dense_geomean = (dense_chunked_vs_packed_log / dense_core_ops.max(1) as f64).exp();
    println!("\nuniform-250k packed-vs-hash geomean: {geomean:.2}×");
    println!(
        "dense-2.5m chunked-vs-packed geomean (intersection/venn3/confusion): {dense_geomean:.2}×"
    );

    // Sparse-workload verdict: the two-level engine's reason to exist.
    // Bytes/pair is deterministic (exact arenas, scale-invariant chunk
    // occupancy down to FROST_SCALE=0.05), so it is asserted hard; the
    // speed geomean is recorded and gated against the baseline below.
    let sparse = &uniform_big;
    let sparse_pairs = sparse.packed[0].len().max(1) as f64;
    let sparse_roaring_bpp = sparse.roaring[0].heap_bytes() as f64 / sparse_pairs;
    let sparse_chunked_bpp = sparse.chunked[0].heap_bytes() as f64 / sparse_pairs;
    let sparse_packed_bpp = sparse.packed[0].heap_bytes() as f64 / sparse_pairs;
    let sparse_vs_packed = (sparse_roaring_vs_packed_log / sparse_core_ops.max(1) as f64).exp();
    let sparse_vs_chunked = (sparse_roaring_vs_chunked_log / sparse_core_ops.max(1) as f64).exp();
    println!(
        "{} roaring: {sparse_roaring_bpp:.2} bytes/pair (chunked {sparse_chunked_bpp:.2}, packed {sparse_packed_bpp:.2}); \
intersection/union/venn3 geomean vs packed {sparse_vs_packed:.2}×, vs chunked {sparse_vs_chunked:.2}×",
        sparse.name
    );
    if scale >= 0.05 {
        assert!(
            sparse_roaring_bpp <= 2.4,
            "sparse roaring bytes/pair {sparse_roaring_bpp:.2} exceeds the 2.4 bound"
        );
        assert!(
            sparse_roaring_bpp < sparse_chunked_bpp && sparse_roaring_bpp < sparse_packed_bpp,
            "sparse roaring must be the smallest engine"
        );
    }

    // Gallop tuning summary.
    let mut gallop_entries = Vec::new();
    let mut crossover: Option<usize> = None;
    for &ratio in &gallop_ratios {
        let merge_ns = mean_of(&c, &format!("gallop_tuning/merge/r{ratio}"));
        let gallop_ns = mean_of(&c, &format!("gallop_tuning/gallop/r{ratio}"));
        if gallop_ns < merge_ns && crossover.is_none() {
            crossover = Some(ratio);
        }
        gallop_entries.push(Value::object([
            ("ratio".to_string(), Value::from(ratio)),
            ("merge_ns".to_string(), Value::from(merge_ns)),
            ("gallop_ns".to_string(), Value::from(gallop_ns)),
        ]));
    }
    println!(
        "gallop crossover: galloping first wins at ratio {} (shared GALLOP_RATIO = {})",
        crossover.map_or("none".to_string(), |r| r.to_string()),
        frost_core::dataset::pairset::GALLOP_RATIO
    );

    // Equal-size merge summary: the four-lane column vs the two-lane
    // bidirectional merge.
    let mut equal_entries = Vec::new();
    for &n in &equal_sizes {
        let two_ns = mean_of(&c, &format!("equal_merge/two_lane/n{n}"));
        let four_ns = mean_of(&c, &format!("equal_merge/four_lane/n{n}"));
        println!(
            "equal merge n={n:<7} two-lane {two_ns:>10.0}ns  four-lane {four_ns:>10.0}ns  ({:.2}×)",
            two_ns / four_ns
        );
        equal_entries.push(Value::object([
            ("n".to_string(), Value::from(n)),
            ("two_lane_ns".to_string(), Value::from(two_ns)),
            ("four_lane_ns".to_string(), Value::from(four_ns)),
            ("speedup".to_string(), Value::from(two_ns / four_ns)),
        ]));
    }

    let sweep_base = sweep_times.first().map(|&(_, s)| s).unwrap_or(0.0);
    let sweep_entries: Vec<Value> = sweep_times
        .iter()
        .map(|&(threads, secs)| {
            Value::object([
                ("threads".to_string(), Value::from(threads)),
                ("seconds".to_string(), Value::from(secs)),
                (
                    "speedup_vs_1_thread".to_string(),
                    Value::from(if secs > 0.0 { sweep_base / secs } else { 0.0 }),
                ),
            ])
        })
        .collect();

    let base_secs = pipeline_times.first().map(|&(_, s, _)| s).unwrap_or(0.0);
    let scaling_entries: Vec<Value> = pipeline_times
        .iter()
        .map(|&(threads, secs, candidates)| {
            Value::object([
                ("threads".to_string(), Value::from(threads)),
                ("seconds".to_string(), Value::from(secs)),
                ("candidates".to_string(), Value::from(candidates)),
                (
                    "speedup_vs_1_thread".to_string(),
                    Value::from(if secs > 0.0 { base_secs / secs } else { 0.0 }),
                ),
            ])
        })
        .collect();

    let doc = Value::object([
        ("workloads".to_string(), Value::Array(workload_entries)),
        ("scale".to_string(), Value::from(scale)),
        ("set_operations".to_string(), Value::Array(op_entries)),
        ("set_ops_geomean_speedup".to_string(), Value::from(geomean)),
        (
            "dense_chunked_vs_packed_geomean".to_string(),
            Value::from(dense_geomean),
        ),
        (
            "sparse_roaring".to_string(),
            Value::object([
                ("workload".to_string(), Value::from(sparse.name)),
                (
                    "roaring_bytes_per_pair".to_string(),
                    Value::from(sparse_roaring_bpp),
                ),
                (
                    "chunked_bytes_per_pair".to_string(),
                    Value::from(sparse_chunked_bpp),
                ),
                (
                    "packed_bytes_per_pair".to_string(),
                    Value::from(sparse_packed_bpp),
                ),
                (
                    "vs_packed_geomean".to_string(),
                    Value::from(sparse_vs_packed),
                ),
                (
                    "vs_chunked_geomean".to_string(),
                    Value::from(sparse_vs_chunked),
                ),
            ]),
        ),
        ("memory".to_string(), Value::Array(memory_entries)),
        ("equal_merge".to_string(), Value::Array(equal_entries)),
        (
            "gallop_tuning".to_string(),
            Value::object([
                ("ratios".to_string(), Value::Array(gallop_entries)),
                (
                    "crossover_ratio".to_string(),
                    Value::from(crossover.unwrap_or(0)),
                ),
                (
                    "shared_constant".to_string(),
                    Value::from(frost_core::dataset::pairset::GALLOP_RATIO),
                ),
            ]),
        ),
        (
            "diagram_sweep".to_string(),
            Value::object([
                ("experiments".to_string(), Value::from(sweep_exps.len())),
                ("samples".to_string(), Value::from(sweep_s)),
                ("records".to_string(), Value::from(sweep_records)),
                ("pairs_per_experiment".to_string(), Value::from(sweep_pairs)),
                ("scaling".to_string(), Value::Array(sweep_entries)),
            ]),
        ),
        (
            "pipeline_scaling".to_string(),
            Value::Array(scaling_entries),
        ),
        ("hardware_threads".to_string(), Value::from(hw)),
    ]);
    let out = serde_json::to_string_pretty(&doc);
    // Relative FROST_BENCH_OUT paths resolve against the workspace
    // root (cargo bench runs with the package directory as cwd).
    let workspace_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = match std::env::var("FROST_BENCH_OUT") {
        Ok(p) if std::path::Path::new(&p).is_absolute() => std::path::PathBuf::from(p),
        Ok(p) => workspace_root.join(p),
        Err(_) => workspace_root.join("BENCH_pairset.json"),
    };
    std::fs::write(&path, out).expect("write BENCH_pairset.json");
    println!("\nwrote {}", path.display());

    // Regression gate against a recorded baseline (CI smoke step).
    // Geomeans depend on the workload scale, so the gate only fires
    // when the baseline was recorded at a comparable FROST_SCALE —
    // compare smoke runs against a smoke baseline
    // (BENCH_pairset_smoke.json), full runs against the full one.
    if let Ok(baseline_env) = std::env::var("FROST_BENCH_BASELINE") {
        // Relative paths resolve against the workspace root (cargo
        // bench runs with the package directory as cwd).
        let mut baseline_path = std::path::PathBuf::from(&baseline_env);
        if !baseline_path.exists() {
            baseline_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&baseline_env);
        }
        let baseline: Value = serde_json::from_str(
            &std::fs::read_to_string(&baseline_path).expect("read baseline json"),
        )
        .expect("parse baseline json");
        let recorded_scale = baseline.get("scale").and_then(Value::as_f64).unwrap_or(1.0);
        let recorded = baseline
            .get("set_ops_geomean_speedup")
            .and_then(Value::as_f64)
            .expect("baseline missing set_ops_geomean_speedup");
        if !(recorded_scale / 1.5..=recorded_scale * 1.5).contains(&scale) {
            println!(
                "baseline gate skipped: baseline recorded at scale {recorded_scale}, this run at {scale}"
            );
        } else {
            let floor = recorded * 0.75;
            println!(
                "baseline gate: geomean {geomean:.2}× vs recorded {recorded:.2}× (floor {floor:.2}×)"
            );
            if geomean < floor {
                eprintln!(
                    "REGRESSION: packed-vs-hash geomean {geomean:.2}× fell more than 25% below the recorded {recorded:.2}×"
                );
                std::process::exit(1);
            }
            // Sparse-workload gate: roaring-vs-packed geomean on the
            // uniform-2.5m shape, same -25% floor. Baselines recorded
            // before the two-level engine lack the field and skip.
            if let Some(recorded_sparse) = baseline
                .get("sparse_roaring")
                .and_then(|v| v.get("vs_packed_geomean"))
                .and_then(Value::as_f64)
            {
                let sparse_floor = recorded_sparse * 0.75;
                println!(
                    "baseline gate (sparse roaring): geomean {sparse_vs_packed:.2}× vs recorded {recorded_sparse:.2}× (floor {sparse_floor:.2}×)"
                );
                if sparse_vs_packed < sparse_floor {
                    eprintln!(
                        "REGRESSION: sparse roaring-vs-packed geomean {sparse_vs_packed:.2}× fell more than 25% below the recorded {recorded_sparse:.2}×"
                    );
                    std::process::exit(1);
                }
            }
        }
    }
}
