//! `PairSet` engine vs the `HashSet<RecordPair>` baseline, plus
//! rayon-pipeline core scaling — the measurements behind this repo's
//! `BENCH_pairset.json`.
//!
//! ```text
//! cargo bench -p frost-bench --bench pairset
//! ```
//!
//! Sections:
//!
//! 1. **Set operations** at ≥100k candidate pairs: union, intersection,
//!    difference, 3-set Venn regions, and confusion-matrix TP counting,
//!    each implemented on packed sorted `PairSet`s and on the seed's
//!    hash-set representation (kept here as the baseline).
//! 2. **Pipeline scaling**: one full matching pipeline
//!    (token blocking → weighted similarity → threshold → closure) on a
//!    frost-datagen workload at 1, 2 and all cores.

use criterion::{black_box, Criterion};
use frost_core::dataset::{Experiment, PairSet, RecordPair};
use frost_core::explore::setops::venn_regions;
use frost_core::metrics::confusion::{total_pairs, ConfusionMatrix};
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::{generate, GeneratorConfig};
use frost_matchers::blocking::TokenBlocking;
use frost_matchers::decision::threshold::WeightedAverage;
use frost_matchers::features::Comparator;
use frost_matchers::pipeline::{ClusteringMethod, MatchingPipeline};
use frost_matchers::similarity::Measure;
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Reference (seed) implementations on `HashSet<RecordPair>`.
mod hash_baseline {
    use super::*;

    pub fn venn(sets: &[HashSet<RecordPair>]) -> Vec<(u32, usize)> {
        let mut membership_of: HashMap<RecordPair, u32> = HashMap::new();
        for (i, set) in sets.iter().enumerate() {
            for &p in set {
                *membership_of.entry(p).or_insert(0) |= 1 << i;
            }
        }
        let mut by_mask: HashMap<u32, usize> = HashMap::new();
        for (_, mask) in membership_of {
            *by_mask.entry(mask).or_insert(0) += 1;
        }
        let mut out: Vec<(u32, usize)> = by_mask.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The seed's `SetExpression::evaluate` for `S0 ∩ S1`: leaf sets
    /// are cloned, then intersected — replicated verbatim as the
    /// baseline for the expression-level benchmark.
    pub fn expression_tp(universe: &[HashSet<RecordPair>]) -> HashSet<RecordPair> {
        let sa = universe[0].clone();
        let sb = universe[1].clone();
        sa.intersection(&sb).copied().collect()
    }

    pub fn confusion(
        e: &HashSet<RecordPair>,
        g: &HashSet<RecordPair>,
        total: u64,
    ) -> ConfusionMatrix {
        let tp = e.intersection(g).count() as u64;
        ConfusionMatrix::new(
            tp,
            e.len() as u64 - tp,
            g.len() as u64 - tp,
            total - e.len() as u64 - (g.len() as u64 - tp),
        )
    }
}

fn mean_of(c: &Criterion, id: &str) -> f64 {
    c.results
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("missing bench result {id}"))
        .mean_ns
}

fn main() {
    let scale: f64 = std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let n_records = ((60_000f64) * scale).max(2_000.0) as usize;
    let n_pairs = ((250_000f64) * scale).max(10_000.0) as usize;

    println!("generating workload: {n_records} records, ~{n_pairs} candidate pairs per set");
    let generated = generate(&GeneratorConfig::small("pairset-bench", n_records, 17));
    let truth = &generated.truth;
    let exp_a = synthetic_experiment("a", truth, n_pairs, 0.6, 1);
    let exp_b = synthetic_experiment("b", truth, n_pairs, 0.6, 2);

    let packed_a = exp_a.pair_set();
    let packed_b = exp_b.pair_set();
    let packed_truth: PairSet = truth.intra_pairs().collect();
    let hash_a: HashSet<RecordPair> = exp_a.pairs().iter().map(|sp| sp.pair).collect();
    let hash_b: HashSet<RecordPair> = exp_b.pairs().iter().map(|sp| sp.pair).collect();
    let hash_truth: HashSet<RecordPair> = truth.intra_pairs().collect();
    println!(
        "set sizes: |A| = {}, |B| = {}, |truth| = {}",
        packed_a.len(),
        packed_b.len(),
        packed_truth.len()
    );
    let total = total_pairs(truth.num_records());

    let mut c = Criterion::default().measurement_time(std::time::Duration::from_millis(700));
    {
        let mut g = c.benchmark_group("setops");
        g.bench_function("union/packed", |b| {
            b.iter(|| black_box(packed_a.union(&packed_b)))
        });
        g.bench_function("union/hash", |b| {
            b.iter(|| black_box(hash_a.union(&hash_b).copied().collect::<HashSet<_>>()))
        });
        g.bench_function("intersection/packed", |b| {
            b.iter(|| black_box(packed_a.intersection(&packed_b)))
        });
        g.bench_function("intersection/hash", |b| {
            b.iter(|| {
                black_box(
                    hash_a
                        .intersection(&hash_b)
                        .copied()
                        .collect::<HashSet<_>>(),
                )
            })
        });
        g.bench_function("difference/packed", |b| {
            b.iter(|| black_box(packed_a.difference(&packed_b)))
        });
        g.bench_function("difference/hash", |b| {
            b.iter(|| black_box(hash_a.difference(&hash_b).copied().collect::<HashSet<_>>()))
        });
        let packed_sets = [packed_a.clone(), packed_b.clone(), packed_truth.clone()];
        let hash_sets = [hash_a.clone(), hash_b.clone(), hash_truth.clone()];
        g.bench_function("venn3/packed", |b| {
            b.iter(|| black_box(venn_regions(&packed_sets)))
        });
        g.bench_function("venn3/hash", |b| {
            b.iter(|| black_box(hash_baseline::venn(&hash_sets)))
        });
        // The §4.1 exploration API as the seed shipped it: expression
        // trees whose leaves clone their input sets.
        let expr = frost_core::explore::setops::SetExpression::set(0)
            .intersection(frost_core::explore::setops::SetExpression::set(1));
        let packed_universe = vec![packed_a.clone(), packed_b.clone()];
        let hash_universe = vec![hash_a.clone(), hash_b.clone()];
        g.bench_function("expression_tp/packed", |b| {
            b.iter(|| black_box(expr.evaluate(&packed_universe)))
        });
        g.bench_function("expression_tp/hash", |b| {
            b.iter(|| black_box(hash_baseline::expression_tp(&hash_universe)))
        });
        g.bench_function("confusion/packed", |b| {
            b.iter(|| {
                black_box(ConfusionMatrix::from_pair_sets(
                    &packed_a,
                    &packed_truth,
                    total,
                ))
            })
        });
        g.bench_function("confusion/hash", |b| {
            b.iter(|| black_box(hash_baseline::confusion(&hash_a, &hash_truth, total)))
        });
        g.finish();
    }

    // Cross-check: identical results on both representations.
    {
        let pv: Vec<(u32, usize)> =
            venn_regions(&[packed_a.clone(), packed_b.clone(), packed_truth.clone()])
                .iter()
                .map(|r| (r.membership, r.pairs.len()))
                .collect();
        let hv = hash_baseline::venn(&[hash_a.clone(), hash_b.clone(), hash_truth.clone()]);
        assert_eq!(pv, hv, "venn mismatch between engines");
        assert_eq!(
            ConfusionMatrix::from_pair_sets(&packed_a, &packed_truth, total),
            hash_baseline::confusion(&hash_a, &hash_truth, total),
        );
    }

    // Section 2: pipeline scaling across cores.
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pipe_records = ((12_000f64) * scale).max(1_000.0) as usize;
    let pipe_gen = generate(&GeneratorConfig::small("pipe-bench", pipe_records, 23));
    let pipeline = MatchingPipeline {
        name: "scaling".into(),
        preparer: None,
        blocker: Box::new(TokenBlocking {
            attributes: vec!["name".into(), "description".into()],
            max_token_frequency: 80,
        }),
        model: Box::new(WeightedAverage::uniform(
            [
                Comparator::new("name", Measure::JaroWinkler),
                Comparator::new("description", Measure::TokenJaccard),
                Comparator::new("category", Measure::Exact),
            ],
            0.75,
        )),
        clustering: ClusteringMethod::TransitiveClosure,
    };
    // Always exercise the 2-thread path (on a 1-core box it
    // demonstrates correctness under oversubscription; speedups only
    // appear with real cores), plus all hardware threads when more
    // exist.
    let mut thread_counts = vec![1usize, 2];
    if hw > 2 {
        thread_counts.push(hw);
    }
    let mut pipeline_times: Vec<(usize, f64, usize)> = Vec::new();
    let mut reference: Option<Experiment> = None;
    for threads in thread_counts {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let start = Instant::now();
        let run = pipeline.run(&pipe_gen.dataset);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "pipeline.run {threads:>2} thread(s): {secs:.3}s  ({} candidates, {} matches)",
            run.candidates.len(),
            run.experiment.len()
        );
        pipeline_times.push((threads, secs, run.candidates.len()));
        match &reference {
            None => reference = Some(run.experiment),
            Some(r) => assert_eq!(
                r.pair_set(),
                run.experiment.pair_set(),
                "thread count changed the result"
            ),
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // Summarize + emit BENCH_pairset.json at the workspace root.
    let ops = [
        "union",
        "intersection",
        "difference",
        "venn3",
        "expression_tp",
        "confusion",
    ];
    let mut op_entries = Vec::new();
    let mut geomean_log = 0.0f64;
    println!("\nspeedups (hash baseline / packed PairSet):");
    for op in ops {
        let hash_ns = mean_of(&c, &format!("setops/{op}/hash"));
        let packed_ns = mean_of(&c, &format!("setops/{op}/packed"));
        let speedup = hash_ns / packed_ns;
        geomean_log += speedup.ln();
        println!("  {op:<14} {speedup:>6.2}×");
        op_entries.push(Value::object([
            ("op".to_string(), Value::from(op)),
            ("hash_ns".to_string(), Value::from(hash_ns)),
            ("pairset_ns".to_string(), Value::from(packed_ns)),
            ("speedup".to_string(), Value::from(speedup)),
        ]));
    }
    let geomean = (geomean_log / ops.len() as f64).exp();
    println!("  {:<14} {geomean:>6.2}×", "geomean");
    let base_secs = pipeline_times.first().map(|&(_, s, _)| s).unwrap_or(0.0);
    let scaling_entries: Vec<Value> = pipeline_times
        .iter()
        .map(|&(threads, secs, candidates)| {
            Value::object([
                ("threads".to_string(), Value::from(threads)),
                ("seconds".to_string(), Value::from(secs)),
                ("candidates".to_string(), Value::from(candidates)),
                (
                    "speedup_vs_1_thread".to_string(),
                    Value::from(if secs > 0.0 { base_secs / secs } else { 0.0 }),
                ),
            ])
        })
        .collect();
    let doc = Value::object([
        (
            "workload".to_string(),
            Value::object([
                ("records".to_string(), Value::from(n_records)),
                ("pairs_per_set".to_string(), Value::from(packed_a.len())),
                ("truth_pairs".to_string(), Value::from(packed_truth.len())),
                ("scale".to_string(), Value::from(scale)),
            ]),
        ),
        ("set_operations".to_string(), Value::Array(op_entries)),
        ("set_ops_geomean_speedup".to_string(), Value::from(geomean)),
        (
            "pipeline_scaling".to_string(),
            Value::Array(scaling_entries),
        ),
        ("hardware_threads".to_string(), Value::from(hw)),
    ]);
    let out = serde_json::to_string_pretty(&doc);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pairset.json");
    std::fs::write(&path, out).expect("write BENCH_pairset.json");
    println!("\nwrote {}", path.display());
}
