//! Criterion benchmark for Table 1's workload: the optimized
//! metric/metric-diagram algorithm (Appendix D) against the naïve
//! per-threshold baseline, across dataset sizes.
//!
//! Run `cargo bench -p frost-bench`. Sizes are scaled versions of the
//! paper's rows; set `FROST_SCALE` to adjust.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frost_core::diagram::DiagramEngine;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::generate;
use frost_datagen::presets::{altosight_x4, cora, freedb_cds, songs_100k};

fn bench_engines(c: &mut Criterion) {
    let scale: f64 = std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let s = 100;
    let mut group = c.benchmark_group("metric_diagrams");
    group.sample_size(10);

    for preset in [
        altosight_x4(scale.max(0.5)),
        cora(scale.max(0.5)),
        freedb_cds(scale),
        songs_100k(scale),
    ] {
        let gen = generate(&preset.config);
        let n = gen.dataset.len();
        let experiment = synthetic_experiment(
            "bench",
            &gen.truth,
            preset.matched_pairs,
            0.7,
            preset.config.seed,
        );
        let matches = experiment.len();
        group.bench_with_input(
            BenchmarkId::new(
                "optimized",
                format!("{}-n{n}-m{matches}", preset.config.name),
            ),
            &(),
            |b, _| {
                b.iter(|| DiagramEngine::Optimized.confusion_series(n, &gen.truth, &experiment, s))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{}-n{n}-m{matches}", preset.config.name)),
            &(),
            |b, _| b.iter(|| DiagramEngine::Naive.confusion_series(n, &gen.truth, &experiment, s)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
