//! Criterion benchmark for Table 1's workload: the optimized
//! metric/metric-diagram algorithm (Appendix D) against the naïve
//! per-threshold baseline, across dataset sizes.
//!
//! Run `cargo bench -p frost-bench`. Sizes are scaled versions of the
//! paper's rows; set `FROST_SCALE` to adjust.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frost_core::dataset::Experiment;
use frost_core::diagram::DiagramEngine;
use frost_datagen::experiments::synthetic_experiment;
use frost_datagen::generator::generate;
use frost_datagen::presets::{altosight_x4, cora, freedb_cds, songs_100k};

fn bench_engines(c: &mut Criterion) {
    let scale: f64 = std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let s = 100;
    let mut group = c.benchmark_group("metric_diagrams");
    group.sample_size(10);

    for preset in [
        altosight_x4(scale.max(0.5)),
        cora(scale.max(0.5)),
        freedb_cds(scale),
        songs_100k(scale),
    ] {
        let gen = generate(&preset.config);
        let n = gen.dataset.len();
        let experiment = synthetic_experiment(
            "bench",
            &gen.truth,
            preset.matched_pairs,
            0.7,
            preset.config.seed,
        );
        let matches = experiment.len();
        group.bench_with_input(
            BenchmarkId::new(
                "optimized",
                format!("{}-n{n}-m{matches}", preset.config.name),
            ),
            &(),
            |b, _| {
                // Sequential entry point: the bench compares the two
                // algorithms, not the host's thread count.
                b.iter(|| {
                    DiagramEngine::Optimized.confusion_series_sequential(
                        n,
                        &gen.truth,
                        &experiment,
                        s,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("{}-n{n}-m{matches}", preset.config.name)),
            &(),
            |b, _| {
                b.iter(|| {
                    DiagramEngine::Naive.confusion_series_sequential(n, &gen.truth, &experiment, s)
                })
            },
        );
    }
    group.finish();
}

/// The multi-experiment N-Metrics sweep: 6 independent experiments on
/// one dataset, swept with `confusion_series_multi`, at 1 thread vs
/// all hardware threads (the vendored rayon re-reads
/// `RAYON_NUM_THREADS` per call, so the bench can vary it in-process).
fn bench_multi_sweep(c: &mut Criterion) {
    let scale: f64 = std::env::var("FROST_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let s = 100;
    let preset = cora(scale.max(0.5));
    let gen = generate(&preset.config);
    let n = gen.dataset.len();
    let experiments: Vec<Experiment> = (0..6)
        .map(|i| {
            synthetic_experiment(
                format!("sweep-{i}"),
                &gen.truth,
                preset.matched_pairs,
                0.7,
                preset.config.seed + i,
            )
        })
        .collect();
    let refs: Vec<&Experiment> = experiments.iter().collect();
    let hw = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("multi_sweep");
    group.sample_size(10);
    for threads in [1usize, hw.max(2)] {
        group.bench_with_input(
            BenchmarkId::new("optimized_x6", format!("{threads}-threads")),
            &threads,
            |b, &threads| {
                std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
                b.iter(|| DiagramEngine::Optimized.confusion_series_multi(n, &gen.truth, &refs, s));
                std::env::remove_var("RAYON_NUM_THREADS");
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_multi_sweep);
criterion_main!(benches);
