//! Property tests for the `FROSTB` snapshot format.
//!
//! * **Round-trip**: a randomized store survives `to_bytes` →
//!   `from_bytes` exactly — records (including nulls and awkward
//!   characters), gold standards, experiment pair lists (order,
//!   scores, origins), precomputed clusterings, and the pair sets of
//!   **all three engines** byte-identical (each engine's
//!   representation is canonical, so structural equality is byte
//!   equality).
//! * **Corruption**: flipping any byte or truncating at any point is
//!   rejected — by the magic/version checks or by a checksum.

use frost_core::dataset::{
    ChunkedPairSet, Dataset, Experiment, PairOrigin, PairSet, RecordPair, RoaringPairSet, Schema,
    ScoredPair,
};
use frost_storage::snapshot::{from_bytes, to_bytes, SnapshotError};
use frost_storage::BenchmarkStore;
use proptest::prelude::*;

/// Deterministically builds a randomized store from raw proptest
/// material (the vendored proptest has no flat_map, so dependent
/// choices are normalized here instead).
fn build_store(
    values: &[(String, String)],
    gold_labels: &[u32],
    raw_pairs: &[(u32, u32, u32, u32)],
    with_kpis: bool,
) -> BenchmarkStore {
    let n = values.len();
    let mut ds = Dataset::with_capacity("ds", Schema::new(["name", "note"]), n);
    for (i, (name, note)) in values.iter().enumerate() {
        ds.push_record_opt(
            format!("r{i}"),
            vec![
                if name.is_empty() {
                    None
                } else {
                    Some(name.clone())
                },
                if note.is_empty() {
                    None
                } else {
                    Some(note.clone())
                },
            ],
        );
    }
    let mut store = BenchmarkStore::new();
    store.add_dataset(ds).unwrap();

    // Gold labels resized to the record count.
    let labels: Vec<u32> = (0..n)
        .map(|i| gold_labels.get(i).copied().unwrap_or(0))
        .collect();
    store
        .set_gold_standard(
            "ds",
            frost_core::clustering::Clustering::from_assignment(&labels),
        )
        .unwrap();

    // Split the raw pairs into two experiments; ids are folded into
    // range, self-pairs dropped, duplicates collapsed by Experiment.
    let half = raw_pairs.len() / 2;
    for (e, chunk) in [&raw_pairs[..half], &raw_pairs[half..]]
        .into_iter()
        .enumerate()
    {
        let pairs = chunk.iter().filter_map(|&(a, b, sim, kind)| {
            let (a, b) = (a % n as u32, b % n as u32);
            if a == b {
                return None;
            }
            let pair = RecordPair::from((a, b));
            Some(match kind % 3 {
                0 => ScoredPair {
                    pair,
                    similarity: Some(sim as f64 / 100.0),
                    origin: PairOrigin::Matcher,
                },
                1 => ScoredPair {
                    pair,
                    similarity: None,
                    origin: PairOrigin::Matcher,
                },
                _ => ScoredPair {
                    pair,
                    similarity: None,
                    origin: PairOrigin::Closure,
                },
            })
        });
        let kpis = if with_kpis && e == 0 {
            Some(frost_core::softkpi::ExperimentKpis {
                setup: frost_core::softkpi::Effort {
                    hours: 1.5,
                    expertise: 70,
                },
                runtime_seconds: 0.25,
            })
        } else {
            None
        };
        store
            .add_experiment("ds", Experiment::new(format!("e{e}"), pairs), kpis)
            .unwrap();
    }
    store
}

fn assert_round_trip(store: &BenchmarkStore) {
    let bytes = to_bytes(store).unwrap();
    let loaded = from_bytes(&bytes).unwrap();

    assert_eq!(store.dataset_names(), loaded.dataset_names());
    for name in store.dataset_names() {
        let (a, b) = (
            store.dataset(&name).unwrap(),
            loaded.dataset(&name).unwrap(),
        );
        assert_eq!(a.schema().attributes(), b.schema().attributes());
        assert_eq!(a.records(), b.records());
        assert_eq!(
            store.gold_standard(&name).ok(),
            loaded.gold_standard(&name).ok()
        );
    }
    assert_eq!(store.experiment_names(None), loaded.experiment_names(None));
    for name in store.experiment_names(None) {
        let (a, b) = (
            store.experiment(&name).unwrap(),
            loaded.experiment(&name).unwrap(),
        );
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(
            a.experiment.pairs(),
            b.experiment.pairs(),
            "pair list drift"
        );
        assert_eq!(a.clustering, b.clustering, "clustering drift");
        // All three engines' pair sets are byte-identical after
        // save/load: the stored roaring arenas match, and rebuilding
        // the other engines from the loaded pairs reproduces the
        // originals exactly.
        assert_eq!(a.pair_set, b.pair_set, "stored roaring arenas drift");
        assert_eq!(
            a.experiment.pair_set_as::<PairSet>(),
            b.experiment.pair_set_as::<PairSet>()
        );
        assert_eq!(
            a.experiment.pair_set_as::<ChunkedPairSet>(),
            b.experiment.pair_set_as::<ChunkedPairSet>()
        );
        assert_eq!(
            a.experiment.pair_set_as::<RoaringPairSet>(),
            b.experiment.pair_set_as::<RoaringPairSet>()
        );
        assert_eq!(b.experiment.pair_set_as::<RoaringPairSet>(), b.pair_set);
    }
    // Determinism: writing the reloaded store reproduces the bytes.
    assert_eq!(bytes, to_bytes(&loaded).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_store_round_trips(
        values in prop::collection::vec(("[a-z0-9 ,\"]{0,8}", "[ -~]{0,10}"), 2..24),
        gold_labels in prop::collection::vec(0u32..6, 0..24),
        raw_pairs in prop::collection::vec((0u32..24, 0u32..24, 0u32..101, 0u32..3), 0..50),
        with_kpis in prop::collection::vec(0u32..2, 1..2),
    ) {
        let store = build_store(&values, &gold_labels, &raw_pairs, with_kpis[0] == 1);
        assert_round_trip(&store);
    }

    /// Any single corrupted byte is rejected by a magic, version or
    /// checksum check — never silently accepted.
    #[test]
    fn corrupted_byte_rejected(
        values in prop::collection::vec(("[a-z]{0,6}", "[a-z]{0,6}"), 2..12),
        raw_pairs in prop::collection::vec((0u32..12, 0u32..12, 0u32..101, 0u32..3), 0..20),
        flip in (0u32..10_000, 1u32..256),
    ) {
        let store = build_store(&values, &[], &raw_pairs, false);
        let bytes = to_bytes(&store).unwrap();
        let at = flip.0 as usize % bytes.len();
        let mut bad = bytes.clone();
        bad[at] ^= flip.1 as u8;
        prop_assert!(
            from_bytes(&bad).is_err(),
            "corrupted byte {at} (xor {:#x}) was accepted", flip.1
        );
    }

    /// Any truncation is rejected.
    #[test]
    fn truncation_rejected(
        values in prop::collection::vec(("[a-z]{0,6}", "[a-z]{0,6}"), 2..12),
        raw_pairs in prop::collection::vec((0u32..12, 0u32..12, 0u32..101, 0u32..3), 0..20),
        cut in 0u32..10_000,
    ) {
        let store = build_store(&values, &[], &raw_pairs, false);
        let bytes = to_bytes(&store).unwrap();
        let at = cut as usize % bytes.len();
        prop_assert!(from_bytes(&bytes[..at]).is_err(), "truncation at {at} was accepted");
    }
}

/// A version bump is reported as [`SnapshotError::VersionMismatch`],
/// not as generic corruption (so operators see "upgrade your build",
/// not "your file is broken").
#[test]
fn future_version_is_version_mismatch() {
    let store = build_store(
        &[("a".into(), String::new()), ("b".into(), "x".into())],
        &[],
        &[],
        false,
    );
    let mut bytes = to_bytes(&store).unwrap();
    bytes[6] = 2;
    bytes[7] = 0;
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::VersionMismatch { found: 2, .. })
    ));
}
