//! Recovery properties of the `FROSTW` write-ahead log.
//!
//! * **Prefix truncation**: cutting the WAL at *any* byte (a torn tail
//!   from power loss mid-append) recovers exactly the longest valid
//!   frame prefix — the reopened store is byte-identical (via
//!   `snapshot::to_bytes`) to a store that applied only those ops.
//! * **Single-byte corruption**: flipping any byte after the header
//!   either refuses to boot (mid-log damage) or recovers a clean
//!   prefix that stops *before* the damaged frame — an acknowledged
//!   write after the damage is never silently replayed past it, and a
//!   torn frame never half-applies.
//! * **Crash matrix**: every mutating file operation in an
//!   import → append → fsync → compact → append script is failed in
//!   turn (clean error, short write, simulated crash); reopening from
//!   disk always yields one of the script's consistent states, never a
//!   torn one.
//! * **Stream prefix**: any byte-prefix of a replication frame stream
//!   (the body `GET /replication/wal` ships) applies exactly its
//!   complete-record prefix, and resuming from the consumed offset
//!   completes the stream — a primary dying mid-frame can never
//!   half-apply a record on a replica, and the reconnect realigns.

use frost_core::clustering::Clustering;
use frost_core::dataset::{Dataset, Experiment, Schema, ScoredPair};
use frost_storage::durable::{DurableError, DurableStore};
use frost_storage::fault::{FailFs, FailMode, FailpointFs, RealFs};
use frost_storage::snapshot;
use frost_storage::wal::{encode_frame, scan_stream, WalError, WalOp, WAL_HEADER_LEN};
use frost_storage::{BenchmarkStore, FsyncPolicy};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const RECORDS: u32 = 8;

fn seed_store() -> BenchmarkStore {
    let mut ds = Dataset::new("people", Schema::new(["name"]));
    for i in 0..RECORDS {
        ds.push_record(format!("r{i}"), [format!("person {i}")]);
    }
    let mut store = BenchmarkStore::new();
    store.add_dataset(ds).unwrap();
    store
        .set_gold_standard(
            "people",
            Clustering::from_assignment(&[0, 0, 1, 1, 2, 2, 3, 3]),
        )
        .unwrap();
    store
        .add_experiment(
            "people",
            Experiment::from_pairs("seed", [(0u32, 1u32)]),
            None,
        )
        .unwrap();
    store
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "frost-walprop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Normalizes raw proptest material into a valid op sequence: adds
/// with unique names and folded-into-range pair lists, plus deletes
/// that each target the immediately preceding (still present) add.
fn build_ops(raw: &[(u32, u32, u32)], deletes: &[u32]) -> Vec<WalOp> {
    let mut ops = Vec::new();
    let mut adds = 0usize;
    let mut last_alive: Option<String> = None;
    for (i, chunk) in raw.chunks(2).enumerate() {
        if deletes.get(i).copied().unwrap_or(0) == 1 {
            if let Some(name) = last_alive.take() {
                ops.push(WalOp::DeleteExperiment { name });
                continue;
            }
        }
        let pairs = chunk.iter().filter_map(|&(a, b, sim)| {
            let (a, b) = (a % RECORDS, b % RECORDS);
            if a == b {
                return None;
            }
            Some(if sim % 2 == 0 {
                ScoredPair::scored((a, b), f64::from(sim % 101) / 100.0)
            } else {
                ScoredPair::unscored((a, b))
            })
        });
        let name = format!("run-{adds}");
        adds += 1;
        let experiment = Experiment::new(name.clone(), pairs);
        ops.push(WalOp::add_experiment("people", &experiment, None));
        last_alive = Some(name);
    }
    ops
}

/// The canonical bytes of the seed store with `ops[..k]` applied.
fn expected_bytes(ops: &[WalOp], k: usize) -> Vec<u8> {
    let mut store = seed_store();
    for op in &ops[..k] {
        op.apply(&mut store).unwrap();
    }
    snapshot::to_bytes(&store).unwrap()
}

/// Writes seed snapshot + WAL holding `ops`, returns the WAL path.
fn persist(dir: &std::path::Path, ops: &[WalOp]) -> (PathBuf, PathBuf) {
    let path = dir.join("store.frostb");
    snapshot::save(&seed_store(), &path).unwrap();
    let (_, mut durable, _) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
    for op in ops {
        durable.append(op).unwrap();
    }
    let wal = durable.wal_path().to_path_buf();
    (path, wal)
}

/// Frame boundaries: byte offset of the end of each frame prefix
/// (`bounds[k]` = WAL length holding exactly `k` ops).
fn frame_bounds(ops: &[WalOp]) -> Vec<u64> {
    let mut bounds = vec![WAL_HEADER_LEN];
    for op in ops {
        bounds.push(bounds.last().unwrap() + encode_frame(op).len() as u64);
    }
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the WAL at any byte ≥ the header replays exactly the
    /// longest whole-frame prefix, byte-identical to a store that only
    /// applied those ops.
    #[test]
    fn truncated_wal_replays_the_longest_valid_prefix(
        raw in prop::collection::vec((0u32..16, 0u32..16, 0u32..200), 2..12),
        deletes in prop::collection::vec(0u32..2, 0..6),
        cut_seed in 0u64..1_000_000,
    ) {
        let ops = build_ops(&raw, &deletes);
        prop_assume!(!ops.is_empty());
        let dir = scratch("truncate");
        let (path, wal) = persist(&dir, &ops);
        let bounds = frame_bounds(&ops);
        let full = *bounds.last().unwrap();

        let cut = WAL_HEADER_LEN + cut_seed % (full - WAL_HEADER_LEN + 1);
        RealFs.truncate(&wal, cut).unwrap();

        let surviving = bounds.iter().rposition(|&b| b <= cut).unwrap();
        let (store, durable, report) =
            DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        prop_assert_eq!(report.replayed, surviving);
        prop_assert_eq!(
            report.truncated_tail,
            (cut > bounds[surviving]).then_some(cut - bounds[surviving]),
            "torn bytes past the last whole frame are truncated away"
        );
        prop_assert_eq!(durable.wal_len(), bounds[surviving]);
        prop_assert_eq!(
            snapshot::to_bytes(&store).unwrap(),
            expected_bytes(&ops, surviving),
            "recovered store must be byte-identical to the prefix store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte after the header either refuses to
    /// boot or recovers a prefix that stops before the damaged frame.
    /// It never replays past damage and never half-applies a frame.
    #[test]
    fn corrupted_byte_never_replays_past_the_damage(
        raw in prop::collection::vec((0u32..16, 0u32..16, 0u32..200), 2..12),
        deletes in prop::collection::vec(0u32..2, 0..6),
        flip in (0u64..1_000_000, 1u32..256),
    ) {
        let ops = build_ops(&raw, &deletes);
        prop_assume!(!ops.is_empty());
        let dir = scratch("corrupt");
        let (path, wal) = persist(&dir, &ops);
        let bounds = frame_bounds(&ops);
        let full = *bounds.last().unwrap();

        let at = WAL_HEADER_LEN + flip.0 % (full - WAL_HEADER_LEN);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[at as usize] ^= flip.1 as u8;
        std::fs::write(&wal, &bytes).unwrap();

        // The index of the frame containing the flipped byte.
        let damaged = bounds.iter().rposition(|&b| b <= at).unwrap();
        match DurableStore::open(&path, FsyncPolicy::Always) {
            Err(DurableError::Wal(WalError::Corrupted { .. })) => {
                prop_assert!(
                    damaged + 1 < ops.len(),
                    "only mid-log damage (intact frames follow) may refuse boot"
                );
            }
            Err(e) => prop_assert!(false, "unexpected boot error: {e}"),
            Ok((store, _, report)) => {
                prop_assert!(
                    report.replayed <= damaged,
                    "replayed {} ops but frame {damaged} is damaged",
                    report.replayed
                );
                prop_assert_eq!(
                    snapshot::to_bytes(&store).unwrap(),
                    expected_bytes(&ops, report.replayed),
                    "recovered store must be an exact prefix store"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A replica fed any byte-prefix of a frame stream applies exactly
    /// the whole frames in it, and a reconnect resuming at the
    /// consumed offset yields the rest — prefix + remainder is
    /// byte-identical to applying every op.
    #[test]
    fn stream_prefix_applies_whole_frames_and_resumes_at_the_cut(
        raw in prop::collection::vec((0u32..16, 0u32..16, 0u32..200), 2..12),
        deletes in prop::collection::vec(0u32..2, 0..6),
        cut_seed in 0u64..1_000_000,
    ) {
        let ops = build_ops(&raw, &deletes);
        prop_assume!(!ops.is_empty());
        let mut stream = Vec::new();
        let mut bounds = vec![0usize];
        for op in &ops {
            stream.extend_from_slice(&encode_frame(op));
            bounds.push(stream.len());
        }

        let cut = (cut_seed as usize) % (stream.len() + 1);
        let first = scan_stream(&stream[..cut]).unwrap();
        let surviving = bounds.iter().rposition(|&b| b <= cut).unwrap();
        prop_assert_eq!(
            first.consumed, bounds[surviving],
            "consumption must stop at the last whole-frame boundary"
        );
        prop_assert_eq!(first.ops.len(), surviving);

        let mut store = seed_store();
        for op in &first.ops {
            op.apply(&mut store).unwrap();
        }
        prop_assert_eq!(
            snapshot::to_bytes(&store).unwrap(),
            expected_bytes(&ops, surviving),
            "a partial stream applies exactly its complete-record prefix"
        );

        // The reconnect: poll again from the consumed offset.
        let resumed = scan_stream(&stream[first.consumed..]).unwrap();
        prop_assert_eq!(resumed.consumed, stream.len() - first.consumed);
        prop_assert_eq!(resumed.ops.len(), ops.len() - surviving);
        for op in &resumed.ops {
            op.apply(&mut store).unwrap();
        }
        prop_assert_eq!(
            snapshot::to_bytes(&store).unwrap(),
            expected_bytes(&ops, ops.len()),
            "prefix + resumed remainder must equal the full stream"
        );
    }
}

/// The write script the crash matrix drives: two imports, a
/// compaction, one more import. Mirrors the server's write protocol
/// (append before apply).
fn write_script(path: &std::path::Path, fs: Arc<dyn FailFs>) -> Result<(), DurableError> {
    let (mut store, mut durable, _) = DurableStore::open_with(path, FsyncPolicy::Always, fs)?;
    for name in ["run-1", "run-2"] {
        let experiment = Experiment::new(name, [ScoredPair::scored((2u32, 3u32), 0.9)]);
        let op = WalOp::add_experiment("people", &experiment, None);
        durable.append(&op)?;
        op.apply(&mut store).map_err(DurableError::Replay)?;
    }
    durable.compact(&store)?;
    let experiment = Experiment::new("run-3", [ScoredPair::unscored((4u32, 5u32))]);
    let op = WalOp::add_experiment("people", &experiment, None);
    durable.append(&op)?;
    op.apply(&mut store).map_err(DurableError::Replay)?;
    Ok(())
}

/// Every injected failure at every mutating file operation of the
/// script leaves disk in one of its consistent states: recovery after
/// a "crash" anywhere in import → WAL append → fsync → compaction →
/// rename serves a pre-write or post-write store, never a torn one.
#[test]
fn every_crash_point_recovers_to_a_consistent_state() {
    // The script's consistent states, as canonical snapshot bytes:
    // after 0, 1, 2 or 3 applied imports (compaction changes nothing).
    let candidates: Vec<Vec<u8>> = (0..4)
        .map(|k| {
            let mut store = seed_store();
            let specs: [(&str, ScoredPair); 3] = [
                ("run-1", ScoredPair::scored((2u32, 3u32), 0.9)),
                ("run-2", ScoredPair::scored((2u32, 3u32), 0.9)),
                ("run-3", ScoredPair::unscored((4u32, 5u32))),
            ];
            for (name, pair) in &specs[..k] {
                store
                    .add_experiment("people", Experiment::new(*name, [*pair]), None)
                    .unwrap();
            }
            snapshot::to_bytes(&store).unwrap()
        })
        .collect();

    // Enumerate the failpoint positions with a counting run.
    let dir = scratch("count");
    let path = dir.join("store.frostb");
    snapshot::save(&seed_store(), &path).unwrap();
    let counter = Arc::new(FailpointFs::counting());
    write_script(&path, Arc::clone(&counter) as Arc<dyn FailFs>).unwrap();
    let total = counter.ops_seen();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(total >= 10, "script should exercise many I/O boundaries");

    let modes = [
        FailMode::Error,
        FailMode::ShortWrite(3),
        FailMode::Crash,
        FailMode::CrashShortWrite(1),
    ];
    for at in 0..total {
        for mode in modes {
            let dir = scratch(&format!("matrix-{at}-{mode:?}"));
            let path = dir.join("store.frostb");
            snapshot::save(&seed_store(), &path).unwrap();
            let fs = Arc::new(FailpointFs::failing_at(at, mode));
            let outcome = write_script(&path, Arc::clone(&fs) as Arc<dyn FailFs>);
            assert!(
                outcome.is_err(),
                "failpoint {at} ({mode:?}) must surface as a write error"
            );
            assert!(fs.triggered());

            // The restart: reopen the same paths with the production
            // filesystem and demand a consistent state.
            let (store, _, _) = DurableStore::open(&path, FsyncPolicy::Always)
                .unwrap_or_else(|e| panic!("recovery after failpoint {at} ({mode:?}): {e}"));
            let bytes = snapshot::to_bytes(&store).unwrap();
            assert!(
                candidates.contains(&bytes),
                "failpoint {at} ({mode:?}) recovered a torn state \
                 (experiments: {:?})",
                store.experiment_names(None)
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
