//! # frost-storage
//!
//! The benchmark store: Frost's counterpart of the Snowman back-end.
//!
//! Snowman bundles a NodeJS back-end with a SQLite database and
//! optimizes experiments *at import time*: native record IDs are
//! interned to dense numeric IDs (constant-time record access) and a
//! clustering of every experiment is pre-computed, because "nearly all
//! calculations in Snowman are performed using transitively closed
//! clusters instead of pairs" (§5.3). This crate reproduces that layer
//! as an embeddable library:
//!
//! * [`import`] — CSV importers for datasets, gold standards (pair-list
//!   and cluster-attribute formats, §3.1.1) and experiments; custom
//!   formats are "as simple as defining the separator, quote, escape
//!   symbols and a mapping for rows" (§5.1).
//! * [`store`] — the in-memory [`store::BenchmarkStore`] with
//!   import-time optimization and a result cache ("subsequent
//!   evaluations make use of caching", Appendix A.6).
//! * [`api`] — a request/response facade mirroring the REST API surface
//!   (Appendix A.4): everything the front-end can do is available
//!   programmatically.

pub mod api;
pub mod import;
pub mod persist;
pub mod store;

pub use store::{BenchmarkStore, StoreError};
