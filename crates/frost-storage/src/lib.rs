//! # frost-storage
//!
//! The benchmark store: Frost's counterpart of the Snowman back-end.
//!
//! Snowman bundles a NodeJS back-end with a SQLite database and
//! optimizes experiments *at import time*: native record IDs are
//! interned to dense numeric IDs (constant-time record access) and a
//! clustering of every experiment is pre-computed, because "nearly all
//! calculations in Snowman are performed using transitively closed
//! clusters instead of pairs" (§5.3). This crate reproduces that layer
//! as an embeddable library:
//!
//! * [`import`] — CSV importers for datasets, gold standards (pair-list
//!   and cluster-attribute formats, §3.1.1) and experiments; custom
//!   formats are "as simple as defining the separator, quote, escape
//!   symbols and a mapping for rows" (§5.1).
//! * [`store`] — the in-memory [`store::BenchmarkStore`] with
//!   import-time optimization and a result cache ("subsequent
//!   evaluations make use of caching", Appendix A.6).
//! * [`api`] — a request/response facade mirroring the REST API surface
//!   (Appendix A.4): everything the front-end can do is available
//!   programmatically.
//! * [`snapshot`] — the `FROSTB` binary at-rest format: a versioned,
//!   checksummed single-file snapshot of the whole store *including*
//!   the import-time artifacts (clusterings, roaring pair-set
//!   arenas), so server start-up is one sequential read instead of
//!   parse-and-rebuild. CSV ([`persist`]) remains the interchange
//!   format.
//! * [`cache`] — a sharded, generation-stamped concurrent cache for
//!   derived artifacts (diagram series, Venn tables, comparisons),
//!   used by the `frost-server` crate's HTTP layer. Entries can be
//!   stamped with invalidation *scopes* so a write to one experiment
//!   does not evict unrelated cached work.
//! * [`wal`] — the `FROSTW` write-ahead log: CRC-framed, length-
//!   prefixed mutation records bound to the exact snapshot they apply
//!   over, with torn-tail recovery and loud mid-log corruption
//!   detection.
//! * [`durable`] — the [`durable::DurableStore`] writer that sequences
//!   WAL append → fsync → in-memory apply, replays on boot, and
//!   compacts the log into a fresh snapshot via atomic rename.
//! * [`fault`] — the injectable I/O layer ([`fault::FailFs`]) the
//!   durable path runs on, so tests can force short writes, fsync
//!   errors and crashes at every boundary.
//! * [`telemetry`] — lock-free log-linear latency histograms (the
//!   measurement core shared by the durable writer's WAL timings, the
//!   HTTP server's request telemetry, and the bench harness's
//!   percentile reporting).

pub mod api;
pub mod cache;
pub mod durable;
pub mod fault;
pub mod import;
pub mod persist;
pub mod snapshot;
pub mod store;
pub mod telemetry;
pub mod wal;

pub use cache::ShardedCache;
pub use durable::{BootReport, DurableError, DurableStore};
pub use store::{BenchmarkStore, StoreError};
pub use wal::FsyncPolicy;
