//! A request/response facade over the store, mirroring Snowman's REST
//! API surface (Appendix A.4).
//!
//! Snowman's front-end has no capability that is not also reachable via
//! the HTTP API; third-party tools integrate by speaking it ("one could
//! automatically upload results into a (potentially shared) Snowman
//! instance"). This module is the library-level equivalent: a
//! serializable [`Request`] enum handled against a
//! [`BenchmarkStore`], so embedding applications (or a thin HTTP shim)
//! get the full feature set through one entry point.

use crate::store::{BenchmarkStore, StoreError};
use frost_core::diagram::DiagramEngine;
use frost_core::explore::setops::venn_regions;
use frost_core::metrics::confusion::ConfusionMatrix;
use frost_core::metrics::pair::PairMetric;
use frost_core::profiling::DatasetProfile;
use serde::{Deserialize, Serialize};

/// An API request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// All dataset names.
    ListDatasets,
    /// All experiment names, optionally restricted to one dataset.
    ListExperiments {
        /// Restrict to this dataset.
        dataset: Option<String>,
    },
    /// The dataset's profile (§3.1.3); includes ground-truth features
    /// when a gold standard exists.
    ProfileDataset {
        /// Dataset name.
        dataset: String,
    },
    /// The confusion matrix of an experiment against its gold standard.
    GetConfusionMatrix {
        /// Experiment name.
        experiment: String,
    },
    /// All built-in pair metrics of an experiment (the N-Metrics viewer
    /// of §5.4).
    GetMetrics {
        /// Experiment name.
        experiment: String,
    },
    /// A metric/metric diagram (§4.5.1).
    GetDiagram {
        /// Experiment name.
        experiment: String,
        /// X-axis metric.
        x: PairMetric,
        /// Y-axis metric.
        y: PairMetric,
        /// Algorithm choice.
        engine: DiagramEngine,
        /// Sample points.
        samples: usize,
    },
    /// Venn-region sizes over n experiments (+ optionally the ground
    /// truth as an extra set) — the N-Intersection viewer (Figure 1).
    CompareExperiments {
        /// Experiment names (region bit `i` corresponds to entry `i`).
        experiments: Vec<String>,
        /// Append the gold standard of the first experiment's dataset
        /// as the last set.
        include_gold: bool,
    },
    /// Cluster-based metrics (§3.2.2) of an experiment's clustering
    /// against the gold standard.
    GetClusterMetrics {
        /// Experiment name.
        experiment: String,
    },
    /// Per-attribute nullRatio or equalRatio over the experiment's
    /// judged pairs (§4.5.2–4.5.3).
    GetAttributeRatios {
        /// Experiment name.
        experiment: String,
        /// Which ratio to compute.
        kind: RatioKind,
    },
    /// The structural error profile of an experiment (§7 outlook).
    GetErrorProfile {
        /// Experiment name.
        experiment: String,
    },
    /// Ground-truth-free quality signals of an experiment (§3.2.3).
    GetQualitySignals {
        /// Experiment name.
        experiment: String,
    },
    /// Imports an experiment from CSV text (`id1,id2[,similarity]`
    /// rows with a header, native record ids). Mutating — only
    /// [`handle_mut`] accepts it.
    ImportExperiment {
        /// Dataset the experiment ran on.
        dataset: String,
        /// Name for the new experiment.
        name: String,
        /// The CSV body.
        csv: String,
    },
    /// Deletes an experiment. Mutating — only [`handle_mut`] accepts
    /// it.
    DeleteExperiment {
        /// Experiment name.
        name: String,
    },
    /// Requests a snapshot of the current store. Mutating — only
    /// [`handle_mut`] accepts it. At the library level this only
    /// reports what would be persisted; the server owns the snapshot
    /// file and performs the actual WAL compaction.
    SaveSnapshot,
}

/// Which attribute-level ratio [`Request::GetAttributeRatios`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RatioKind {
    /// nullRatio (§4.5.2).
    Null,
    /// equalRatio (§4.5.3).
    Equal,
}

/// An API response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Name list.
    Names(Vec<String>),
    /// A dataset profile.
    Profile(DatasetProfile),
    /// A confusion matrix.
    Matrix(ConfusionMatrix),
    /// Named metric values.
    Metrics(Vec<(String, f64)>),
    /// Diagram points: `(threshold, x, y)`.
    Diagram(Vec<(f64, f64, f64)>),
    /// Venn regions: `(membership bitmask, pair count)`.
    Venn(Vec<(u32, usize)>),
    /// Per-attribute ratios.
    AttributeRatios(Vec<frost_core::explore::attribute_stats::AttributeRatio>),
    /// A structural error profile.
    ErrorProfile(frost_core::explore::error_categories::ErrorProfile),
    /// An experiment was imported: its name and accepted pair count.
    Imported {
        /// The new experiment's name.
        experiment: String,
        /// Deduplicated pairs accepted.
        pairs: usize,
    },
    /// An experiment was deleted.
    Deleted {
        /// The removed experiment's name.
        experiment: String,
    },
    /// A snapshot was saved (or would be): object counts.
    Saved {
        /// Datasets in the snapshot.
        datasets: usize,
        /// Experiments in the snapshot.
        experiments: usize,
    },
}

/// Validates and parses an import request against the current store:
/// the dataset must exist, the name must be free, and the CSV must
/// resolve (native record ids, optional similarity column). Read-only
/// and potentially expensive — the server runs it under a read lock
/// *before* touching the WAL, so a bad request never reaches the log.
pub fn parse_experiment_csv(
    store: &BenchmarkStore,
    dataset: &str,
    name: &str,
    csv: &str,
) -> Result<frost_core::dataset::Experiment, StoreError> {
    if name.is_empty() {
        return Err(StoreError::InvalidInput("experiment name is empty".into()));
    }
    let ds = store.dataset(dataset)?;
    if store.experiment(name).is_ok() {
        return Err(StoreError::AlreadyExists(name.into()));
    }
    crate::import::import_experiment(name, ds, csv, frost_core::dataset::CsvOptions::comma())
        .map_err(|e| StoreError::InvalidInput(e.to_string()))
}

/// Handles one mutating (or read-only) request against the store.
/// The write counterpart of [`handle`]; the read-only variants
/// delegate. Callers that need durability (the server) sequence the
/// WAL append themselves and use this only for replay-free embedding.
pub fn handle_mut(store: &mut BenchmarkStore, request: Request) -> Result<Response, StoreError> {
    match request {
        Request::ImportExperiment { dataset, name, csv } => {
            let experiment = parse_experiment_csv(store, &dataset, &name, &csv)?;
            let pairs = experiment.len();
            store.add_experiment(&dataset, experiment, None)?;
            Ok(Response::Imported {
                experiment: name,
                pairs,
            })
        }
        Request::DeleteExperiment { name } => {
            store.remove_experiment(&name)?;
            Ok(Response::Deleted { experiment: name })
        }
        Request::SaveSnapshot => Ok(Response::Saved {
            datasets: store.dataset_names().len(),
            experiments: store.experiment_names(None).len(),
        }),
        read_only => handle(store, read_only),
    }
}

/// Handles one read-only request against the store. Mutating requests
/// are refused — use [`handle_mut`].
pub fn handle(store: &BenchmarkStore, request: Request) -> Result<Response, StoreError> {
    match request {
        Request::ImportExperiment { .. }
        | Request::DeleteExperiment { .. }
        | Request::SaveSnapshot => Err(StoreError::InvalidInput(
            "mutating request sent to the read-only handler".into(),
        )),
        Request::ListDatasets => Ok(Response::Names(store.dataset_names())),
        Request::ListExperiments { dataset } => {
            Ok(Response::Names(store.experiment_names(dataset.as_deref())))
        }
        Request::ProfileDataset { dataset } => {
            let ds = store.dataset(&dataset)?;
            let profile = match store.gold_standard(&dataset) {
                Ok(truth) => DatasetProfile::with_truth(ds, truth),
                Err(_) => DatasetProfile::without_truth(ds),
            };
            Ok(Response::Profile(profile))
        }
        Request::GetConfusionMatrix { experiment } => {
            Ok(Response::Matrix(store.confusion_matrix(&experiment)?))
        }
        Request::GetMetrics { experiment } => {
            let matrix = store.confusion_matrix(&experiment)?;
            Ok(Response::Metrics(
                PairMetric::ALL
                    .iter()
                    .map(|m| (m.to_string(), m.compute(&matrix)))
                    .collect(),
            ))
        }
        Request::GetDiagram {
            experiment,
            x,
            y,
            engine,
            samples,
        } => {
            let points = store.diagram_series(&experiment, engine, samples)?;
            Ok(Response::Diagram(
                points
                    .into_iter()
                    .map(|p| (p.threshold, x.compute(&p.matrix), y.compute(&p.matrix)))
                    .collect(),
            ))
        }
        Request::CompareExperiments {
            experiments,
            include_gold,
        } => {
            // Engine auto-selection: the N-Intersection viewer holds
            // every compared set in memory at once, so the cost model
            // (pair count × chunk occupancy, `pair_engine_hint`)
            // combines the participants' hints into one engine. The
            // common sparse case lands on roaring and reuses each
            // experiment's prebuilt arenas; dense participants pull
            // the group onto chunked; all-small groups run packed.
            let mut stored = Vec::with_capacity(experiments.len());
            let mut first_dataset: Option<String> = None;
            for name in &experiments {
                let s = store.experiment(name)?;
                first_dataset.get_or_insert_with(|| s.dataset.clone());
                stored.push(s);
            }
            let truth = if include_gold {
                let dataset =
                    first_dataset.ok_or_else(|| StoreError::UnknownExperiment("<none>".into()))?;
                Some(store.gold_standard(&dataset)?)
            } else {
                None
            };
            use frost_core::clustering::Clustering;
            use frost_core::dataset::{choose_pair_engine, PairAlgebra, PairEngine};
            fn venn_counts<S: PairAlgebra>(
                mut sets: Vec<S>,
                truth: Option<&Clustering>,
            ) -> Vec<(u32, usize)> {
                if let Some(truth) = truth {
                    sets.push(S::from_pairs(truth.intra_pairs()));
                }
                venn_regions(&sets)
                    .into_iter()
                    .map(|r| (r.membership, r.pairs.len()))
                    .collect()
            }
            // The cost model's inputs (pair count, distinct 2¹⁶
            // chunks) are read off each prebuilt roaring directory —
            // O(chunks) per request, no pass over the raw pair list.
            let engine = PairEngine::combined(
                stored
                    .iter()
                    .map(|s| choose_pair_engine(s.pair_set.len(), s.pair_set.chunk_count())),
            );
            let regions = match engine {
                // The sparse case reuses the prebuilt arenas (a clone,
                // not a re-pack); the other engines rebuild from the
                // pair list in their own layout.
                PairEngine::Roaring => {
                    venn_counts(stored.iter().map(|s| s.pair_set.clone()).collect(), truth)
                }
                PairEngine::Chunked => venn_counts::<frost_core::dataset::ChunkedPairSet>(
                    stored.iter().map(|s| s.experiment.pair_set_as()).collect(),
                    truth,
                ),
                PairEngine::Packed => venn_counts::<frost_core::dataset::PairSet>(
                    stored.iter().map(|s| s.experiment.pair_set_as()).collect(),
                    truth,
                ),
            };
            Ok(Response::Venn(regions))
        }
        Request::GetClusterMetrics { experiment } => {
            use frost_core::metrics::cluster as cm;
            let stored = store.experiment(&experiment)?;
            let truth = store.gold_standard(&stored.dataset)?;
            let c = &stored.clustering;
            Ok(Response::Metrics(vec![
                (
                    "closest-cluster f1".into(),
                    cm::closest_cluster_f1(c, truth),
                ),
                (
                    "variation of information".into(),
                    cm::variation_of_information(c, truth),
                ),
                (
                    "basic merge distance".into(),
                    cm::basic_merge_distance(c, truth),
                ),
                (
                    "adjusted Rand index".into(),
                    cm::adjusted_rand_index(c, truth),
                ),
                ("purity".into(), cm::purity(c, truth)),
                ("inverse purity".into(), cm::inverse_purity(c, truth)),
                ("purity f1".into(), cm::purity_f1(c, truth)),
                (
                    "Talburt-Wang index".into(),
                    cm::talburt_wang_index(c, truth),
                ),
            ]))
        }
        Request::GetAttributeRatios { experiment, kind } => {
            use frost_core::explore::{attribute_stats, judge_experiment};
            let stored = store.experiment(&experiment)?;
            let ds = store.dataset(&stored.dataset)?;
            let truth = store.gold_standard(&stored.dataset)?;
            let judged = judge_experiment(&stored.experiment, truth);
            let ratios = match kind {
                RatioKind::Null => attribute_stats::null_ratio(ds, &judged),
                RatioKind::Equal => attribute_stats::equal_ratio(ds, &judged),
            };
            Ok(Response::AttributeRatios(ratios))
        }
        Request::GetErrorProfile { experiment } => {
            use frost_core::explore::{error_categories::ErrorProfile, judge_experiment};
            let stored = store.experiment(&experiment)?;
            let ds = store.dataset(&stored.dataset)?;
            let truth = store.gold_standard(&stored.dataset)?;
            let judged = judge_experiment(&stored.experiment, truth);
            Ok(Response::ErrorProfile(ErrorProfile::from_judged(
                ds, &judged,
            )))
        }
        Request::GetQualitySignals { experiment } => {
            use frost_core::quality;
            let stored = store.experiment(&experiment)?;
            let ds = store.dataset(&stored.dataset)?;
            let n = ds.len();
            let e = &stored.experiment;
            let mut signals = vec![
                (
                    "closure inconsistency".to_string(),
                    quality::closure_inconsistency(n, e) as f64,
                ),
                (
                    "normalized closure inconsistency".to_string(),
                    quality::normalized_closure_inconsistency(n, e),
                ),
                (
                    "link redundancy".to_string(),
                    quality::link_redundancy(n, e),
                ),
                ("bridge ratio".to_string(), quality::bridge_ratio(n, e)),
                (
                    "algorithm consensus".to_string(),
                    quality::algorithm_consensus(n, e),
                ),
            ];
            if let Some(compactness) = quality::compactness(e) {
                signals.push(("compactness".to_string(), compactness));
            }
            Ok(Response::Metrics(signals))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::clustering::Clustering;
    use frost_core::dataset::{Dataset, Experiment, Schema};

    fn store() -> BenchmarkStore {
        let mut ds = Dataset::new("d", Schema::new(["name"]));
        for (id, name) in [("a", "x"), ("b", "x"), ("c", "y"), ("d", "z")] {
            ds.push_record(id, [name]);
        }
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("d", Clustering::from_assignment(&[0, 0, 1, 1]))
            .unwrap();
        store
            .add_experiment(
                "d",
                Experiment::from_scored_pairs("e1", [(0u32, 1u32, 0.9)]),
                None,
            )
            .unwrap();
        store
            .add_experiment(
                "d",
                Experiment::from_scored_pairs("e2", [(0u32, 1u32, 0.8), (2, 3, 0.7)]),
                None,
            )
            .unwrap();
        store
    }

    #[test]
    fn listing() {
        let s = store();
        assert_eq!(
            handle(&s, Request::ListDatasets).unwrap(),
            Response::Names(vec!["d".into()])
        );
        assert_eq!(
            handle(&s, Request::ListExperiments { dataset: None }).unwrap(),
            Response::Names(vec!["e1".into(), "e2".into()])
        );
    }

    #[test]
    fn metrics_endpoint() {
        let s = store();
        let Response::Metrics(metrics) = handle(
            &s,
            Request::GetMetrics {
                experiment: "e2".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        let f1 = metrics.iter().find(|(n, _)| n == "f1").unwrap().1;
        assert!((f1 - 1.0).abs() < 1e-12); // e2 is perfect
        let Response::Matrix(m) = handle(
            &s,
            Request::GetConfusionMatrix {
                experiment: "e1".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        assert_eq!(m.false_negatives, 1);
    }

    #[test]
    fn diagram_endpoint() {
        let s = store();
        let Response::Diagram(points) = handle(
            &s,
            Request::GetDiagram {
                experiment: "e2".into(),
                x: PairMetric::Recall,
                y: PairMetric::Precision,
                engine: DiagramEngine::Optimized,
                samples: 3,
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        assert_eq!(points.len(), 3);
        let last = points.last().unwrap();
        assert_eq!(last.1, 1.0);
        assert_eq!(last.2, 1.0);
    }

    #[test]
    fn venn_endpoint_with_gold() {
        let s = store();
        let Response::Venn(regions) = handle(
            &s,
            Request::CompareExperiments {
                experiments: vec!["e1".into(), "e2".into()],
                include_gold: true,
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        // Sets: e1 {ab}, e2 {ab, cd}, gold {ab, cd}.
        // Regions: ab in all three (0b111, 1 pair); cd in e2+gold (0b110, 1).
        let as_map: std::collections::HashMap<u32, usize> = regions.into_iter().collect();
        assert_eq!(as_map[&0b111], 1);
        assert_eq!(as_map[&0b110], 1);
        assert_eq!(as_map.len(), 2);
    }

    #[test]
    fn profile_endpoint() {
        let s = store();
        let Response::Profile(p) = handle(
            &s,
            Request::ProfileDataset {
                dataset: "d".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        assert_eq!(p.tuple_count, 4);
        assert!(p.positive_ratio.is_some());
    }

    #[test]
    fn cluster_metrics_endpoint() {
        let s = store();
        let Response::Metrics(metrics) = handle(
            &s,
            Request::GetClusterMetrics {
                experiment: "e2".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).unwrap().1;
        // e2 reproduces the gold standard exactly.
        assert!((get("closest-cluster f1") - 1.0).abs() < 1e-12);
        assert!(get("variation of information").abs() < 1e-12);
        assert_eq!(get("basic merge distance"), 0.0);
        assert!((get("purity f1") - 1.0).abs() < 1e-12);
        assert!((get("Talburt-Wang index") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attribute_ratio_and_error_profile_endpoints() {
        let s = store();
        let Response::AttributeRatios(ratios) = handle(
            &s,
            Request::GetAttributeRatios {
                experiment: "e1".into(),
                kind: RatioKind::Equal,
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        assert_eq!(ratios.len(), 1); // one attribute
        assert_eq!(ratios[0].attribute, "name");
        let Response::ErrorProfile(profile) = handle(
            &s,
            Request::GetErrorProfile {
                experiment: "e1".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        // e1 only predicted a correct pair → no errors among predictions.
        assert!(profile.false_positives.is_empty());
    }

    #[test]
    fn quality_signals_endpoint() {
        let s = store();
        let Response::Metrics(signals) = handle(
            &s,
            Request::GetQualitySignals {
                experiment: "e2".into(),
            },
        )
        .unwrap() else {
            panic!("wrong response type")
        };
        let get = |k: &str| signals.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("closure inconsistency"), 0.0);
        assert!(get("compactness") > 0.0);
        assert!((0.0..=1.0).contains(&get("bridge ratio")));
    }

    #[test]
    fn errors_propagate() {
        let s = store();
        assert!(handle(
            &s,
            Request::GetMetrics {
                experiment: "nope".into()
            }
        )
        .is_err());
    }

    #[test]
    fn import_delete_and_save_round_trip() {
        let mut s = store();
        let resp = handle_mut(
            &mut s,
            Request::ImportExperiment {
                dataset: "d".into(),
                name: "e3".into(),
                csv: "id1,id2,similarity\na,b,0.9\nc,d,0.7\nb,a,0.9\n".into(),
            },
        )
        .unwrap();
        assert_eq!(
            resp,
            Response::Imported {
                experiment: "e3".into(),
                pairs: 2, // the reversed duplicate collapses
            }
        );
        assert_eq!(
            handle(&s, Request::ListExperiments { dataset: None }).unwrap(),
            Response::Names(vec!["e1".into(), "e2".into(), "e3".into()])
        );
        // The imported experiment is immediately evaluable.
        assert!(handle(
            &s,
            Request::GetMetrics {
                experiment: "e3".into()
            }
        )
        .is_ok());
        assert_eq!(
            handle_mut(&mut s, Request::SaveSnapshot).unwrap(),
            Response::Saved {
                datasets: 1,
                experiments: 3
            }
        );
        assert_eq!(
            handle_mut(&mut s, Request::DeleteExperiment { name: "e3".into() }).unwrap(),
            Response::Deleted {
                experiment: "e3".into()
            }
        );
        assert!(handle(
            &s,
            Request::GetMetrics {
                experiment: "e3".into()
            }
        )
        .is_err());
    }

    #[test]
    fn bad_imports_are_rejected_before_mutation() {
        let mut s = store();
        // Duplicate name.
        let err = handle_mut(
            &mut s,
            Request::ImportExperiment {
                dataset: "d".into(),
                name: "e1".into(),
                csv: "id1,id2\na,b\n".into(),
            },
        )
        .unwrap_err();
        assert_eq!(err, StoreError::AlreadyExists("e1".into()));
        // Unknown record id.
        let err = handle_mut(
            &mut s,
            Request::ImportExperiment {
                dataset: "d".into(),
                name: "e3".into(),
                csv: "id1,id2\na,zz\n".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::InvalidInput(_)), "{err:?}");
        // Unknown dataset.
        let err = handle_mut(
            &mut s,
            Request::ImportExperiment {
                dataset: "nope".into(),
                name: "e3".into(),
                csv: "id1,id2\na,b\n".into(),
            },
        )
        .unwrap_err();
        assert_eq!(err, StoreError::UnknownDataset("nope".into()));
        // Nothing landed.
        assert_eq!(
            handle(&s, Request::ListExperiments { dataset: None }).unwrap(),
            Response::Names(vec!["e1".into(), "e2".into()])
        );
    }

    #[test]
    fn read_only_handler_refuses_mutations() {
        let s = store();
        assert!(matches!(
            handle(&s, Request::SaveSnapshot),
            Err(StoreError::InvalidInput(_))
        ));
        assert!(matches!(
            handle(&s, Request::DeleteExperiment { name: "e1".into() }),
            Err(StoreError::InvalidInput(_))
        ));
    }
}
