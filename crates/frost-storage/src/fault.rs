//! An injectable filesystem layer for the durable write path.
//!
//! Every file operation the snapshot + WAL machinery performs goes
//! through the [`FailFs`] trait, so tests can place a *failpoint* at
//! any I/O boundary — a clean error, a short write, or a simulated
//! process crash — and then prove that reopening the store from disk
//! yields either the pre-write or the post-write state, never a torn
//! one. Production code uses [`RealFs`], which forwards to `std::fs`.
//!
//! The failpoint implementation ([`FailpointFs`]) counts *mutating*
//! operations (append, sync, write, rename, truncate, remove) and
//! injects its configured failure when the countdown reaches zero.
//! Reads never count: recovery code must be free to inspect the
//! damage. A [`FailMode::Crash`] failpoint additionally *poisons* all
//! subsequent mutating operations, modelling the process dying at that
//! instant — a test then reopens the same paths with [`RealFs`] to
//! simulate the restart.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// The file operations the durable path performs, abstracted so tests
/// can inject failures at every boundary.
pub trait FailFs: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates/truncates a file and writes `bytes` (no fsync).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to a file, creating it if absent (no fsync).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes a file's data and metadata to stable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production implementation: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl FailFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What a triggered failpoint does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Fail cleanly: report an error without touching the file.
    Error,
    /// Perform only the first `n` bytes of the write, then report an
    /// error — a torn write (power loss mid-`write(2)`).
    ShortWrite(usize),
    /// Fail without side effects and poison every later mutating
    /// operation — the process died *before* this operation.
    Crash,
    /// Write only the first `n` bytes, then poison — the process died
    /// *during* this operation.
    CrashShortWrite(usize),
}

/// A [`FailFs`] that injects one failure after a configured number of
/// mutating operations, forwarding everything else to [`RealFs`].
pub struct FailpointFs {
    inner: RealFs,
    /// Mutating operations remaining before the failpoint triggers.
    countdown: AtomicI64,
    mode: FailMode,
    crashed: AtomicBool,
    ops_seen: AtomicU64,
}

impl FailpointFs {
    /// Fails the `(at + 1)`-th mutating operation (so `at = 0` fails
    /// the first one) with the given mode.
    pub fn failing_at(at: u64, mode: FailMode) -> Self {
        Self {
            inner: RealFs,
            countdown: AtomicI64::new(at as i64),
            mode,
            crashed: AtomicBool::new(false),
            ops_seen: AtomicU64::new(0),
        }
    }

    /// A counting-only instance: never fails, but records how many
    /// mutating operations ran ([`ops_seen`](Self::ops_seen)) so a
    /// test can enumerate every failpoint position.
    pub fn counting() -> Self {
        Self::failing_at(u64::MAX >> 1, FailMode::Error)
    }

    /// Mutating operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen.load(Ordering::SeqCst)
    }

    /// Whether the failpoint has triggered (in a crash mode, whether
    /// the simulated process is dead).
    pub fn triggered(&self) -> bool {
        self.countdown.load(Ordering::SeqCst) < 0 || self.crashed.load(Ordering::SeqCst)
    }

    fn injected(&self) -> io::Error {
        io::Error::other(format!("injected fault ({:?})", self.mode))
    }

    /// Gate for one mutating operation: `Ok(())` lets it run,
    /// `Err(Some(n))` injects a short write of `n` bytes, `Err(None)`
    /// injects a clean failure.
    fn gate(&self) -> Result<(), Option<usize>> {
        if self.crashed.load(Ordering::SeqCst) {
            return Err(None);
        }
        self.ops_seen.fetch_add(1, Ordering::SeqCst);
        if self.countdown.fetch_sub(1, Ordering::SeqCst) != 0 {
            return Ok(());
        }
        match self.mode {
            FailMode::Error => Err(None),
            FailMode::ShortWrite(n) => Err(Some(n)),
            FailMode::Crash => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(None)
            }
            FailMode::CrashShortWrite(n) => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(Some(n))
            }
        }
    }
}

impl FailFs for FailpointFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.write_file(path, bytes),
            Err(Some(n)) => {
                let _ = self.inner.write_file(path, &bytes[..n.min(bytes.len())]);
                Err(self.injected())
            }
            Err(None) => Err(self.injected()),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.append(path, bytes),
            Err(Some(n)) => {
                let _ = self.inner.append(path, &bytes[..n.min(bytes.len())]);
                Err(self.injected())
            }
            Err(None) => Err(self.injected()),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.sync(path),
            Err(_) => Err(self.injected()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.rename(from, to),
            Err(_) => Err(self.injected()),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.truncate(path, len),
            Err(_) => Err(self.injected()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.gate() {
            Ok(()) => self.inner.remove(path),
            Err(_) => Err(self.injected()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_round_trips() {
        let dir = std::env::temp_dir().join(format!("frost-fault-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("a.bin");
        let fs = RealFs;
        fs.write_file(&path, b"hello").unwrap();
        fs.append(&path, b" world").unwrap();
        fs.sync(&path).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello world");
        fs.truncate(&path, 5).unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        let moved = dir.join("b.bin");
        fs.rename(&path, &moved).unwrap();
        assert!(fs.exists(&moved));
        assert!(!fs.exists(&path));
        fs.remove(&moved).unwrap();
        assert!(!fs.exists(&moved));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failpoint_counts_and_triggers() {
        let dir = std::env::temp_dir().join(format!("frost-fault-fp-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("x.bin");
        let fs = FailpointFs::failing_at(1, FailMode::Error);
        fs.write_file(&path, b"one").unwrap(); // op 0: passes
        assert!(fs.append(&path, b"two").is_err()); // op 1: fails cleanly
        assert!(fs.triggered());
        assert_eq!(
            fs.read(&path).unwrap(),
            b"one",
            "clean failure has no side effect"
        );
        // Not a crash mode: later operations run again.
        fs.append(&path, b"three").unwrap();
        assert_eq!(fs.ops_seen(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_poisons_all_later_ops() {
        let dir = std::env::temp_dir().join(format!("frost-fault-crash-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("x.bin");
        let fs = FailpointFs::failing_at(1, FailMode::CrashShortWrite(2));
        fs.write_file(&path, b"start").unwrap();
        assert!(fs.append(&path, b"abcdef").is_err());
        assert_eq!(
            fs.read(&path).unwrap(),
            b"startab",
            "short write left 2 bytes"
        );
        assert!(fs.sync(&path).is_err(), "dead process performs no I/O");
        assert!(fs.write_file(&path, b"nope").is_err());
        assert_eq!(fs.read(&path).unwrap(), b"startab");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
