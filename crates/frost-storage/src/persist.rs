//! File-based persistence for the benchmark store.
//!
//! Snowman persists everything in a single portable application-data
//! directory (SQLite under the hood) so that installing, upgrading and
//! removing the tool is "as simple as … apps on a smartphone" (Appendix
//! A). This module persists a [`BenchmarkStore`] as a plain directory of
//! CSV files — even more portable, diffable, and importable by any other
//! tool:
//!
//! ```text
//! <root>/datasets/<name>.csv      id + attribute columns
//! <root>/golds/<name>.csv         id1,id2 pair list (§3.1.1)
//! <root>/experiments/<name>.csv   dataset,id1,id2,similarity,origin
//! ```

use crate::import::{import_gold_pairs, DatasetImporter, ImportError};
use crate::store::{BenchmarkStore, StoreError};
use frost_core::dataset::{
    parse_csv, write_csv, CsvOptions, Dataset, Experiment, PairOrigin, ScoredPair,
};
use std::fmt;
use std::path::{Path, PathBuf};

/// Errors raised while saving or loading a store directory.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// CSV/import failure.
    Import(ImportError),
    /// Store-level failure (duplicate names, unknown datasets …).
    Store(StoreError),
    /// A file's content was structurally invalid.
    Malformed {
        /// Offending file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Import(e) => write!(f, "import: {e}"),
            PersistError::Store(e) => write!(f, "store: {e}"),
            PersistError::Malformed { path, reason } => {
                write!(f, "malformed {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
impl From<ImportError> for PersistError {
    fn from(e: ImportError) -> Self {
        PersistError::Import(e)
    }
}
impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

/// Serializes a dataset to CSV with a leading `id` column.
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let header = std::iter::once("id".to_string())
        .chain(ds.schema().attributes().iter().cloned())
        .collect::<Vec<String>>();
    let rows = std::iter::once(header).chain(ds.records().iter().map(|r| {
        std::iter::once(r.native_id().to_string())
            .chain(r.values().iter().map(|v| v.clone().unwrap_or_default()))
            .collect()
    }));
    write_csv(rows, CsvOptions::comma())
}

fn experiment_to_csv(ds: &Dataset, dataset_name: &str, e: &Experiment) -> String {
    let rows = std::iter::once(vec![
        "dataset".to_string(),
        "id1".to_string(),
        "id2".to_string(),
        "similarity".to_string(),
        "origin".to_string(),
    ])
    .chain(e.pairs().iter().map(|sp| {
        vec![
            dataset_name.to_string(),
            ds.native_id(sp.pair.lo()).to_string(),
            ds.native_id(sp.pair.hi()).to_string(),
            sp.similarity.map(|s| s.to_string()).unwrap_or_default(),
            match sp.origin {
                PairOrigin::Matcher => "matcher".to_string(),
                PairOrigin::Closure => "closure".to_string(),
            },
        ]
    }));
    write_csv(rows, CsvOptions::comma())
}

/// Writes the store to a directory (created if missing, contents
/// overwritten).
pub fn save(store: &BenchmarkStore, root: impl AsRef<Path>) -> Result<(), PersistError> {
    let root = root.as_ref();
    for sub in ["datasets", "golds", "experiments"] {
        std::fs::create_dir_all(root.join(sub))?;
    }
    for name in store.dataset_names() {
        let ds = store.dataset(&name)?;
        std::fs::write(
            root.join("datasets").join(format!("{name}.csv")),
            dataset_to_csv(ds),
        )?;
        if let Ok(truth) = store.gold_standard(&name) {
            let rows = std::iter::once(vec!["id1".to_string(), "id2".to_string()]).chain(
                truth.intra_pairs().map(|p| {
                    vec![
                        ds.native_id(p.lo()).to_string(),
                        ds.native_id(p.hi()).to_string(),
                    ]
                }),
            );
            std::fs::write(
                root.join("golds").join(format!("{name}.csv")),
                write_csv(rows, CsvOptions::comma()),
            )?;
        }
    }
    for name in store.experiment_names(None) {
        let stored = store.experiment(&name)?;
        let ds = store.dataset(&stored.dataset)?;
        std::fs::write(
            root.join("experiments").join(format!("{name}.csv")),
            experiment_to_csv(ds, &stored.dataset, &stored.experiment),
        )?;
    }
    Ok(())
}

fn file_stem(path: &Path) -> Result<String, PersistError> {
    path.file_stem()
        .and_then(|s| s.to_str())
        .map(str::to_string)
        .ok_or_else(|| PersistError::Malformed {
            path: path.to_path_buf(),
            reason: "file name is not valid UTF-8".into(),
        })
}

fn csv_files(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("csv"))
        .collect();
    files.sort();
    Ok(files)
}

/// Loads a store from either on-disk representation: a `FROSTB`
/// snapshot file ([`crate::snapshot`], the at-rest fast path) or a CSV
/// store directory ([`load`], the interchange format). The `frost
/// serve` / `frostd` entry points accept both through this function.
pub fn load_auto(path: impl AsRef<Path>) -> Result<BenchmarkStore, PersistError> {
    let path = path.as_ref();
    if path.is_file() {
        if !crate::snapshot::is_snapshot(path) {
            return Err(PersistError::Malformed {
                path: path.to_path_buf(),
                reason: "not a FROSTB snapshot (store directories must be directories)".into(),
            });
        }
        return crate::snapshot::load(path).map_err(|e| PersistError::Malformed {
            path: path.to_path_buf(),
            reason: e.to_string(),
        });
    }
    load(path)
}

/// Loads a store directory written by [`save`].
pub fn load(root: impl AsRef<Path>) -> Result<BenchmarkStore, PersistError> {
    let root = root.as_ref();
    let mut store = BenchmarkStore::new();
    let importer = DatasetImporter::standard();
    for path in csv_files(&root.join("datasets"))? {
        let name = file_stem(&path)?;
        let text = std::fs::read_to_string(&path)?;
        store.add_dataset(importer.import(&name, &text)?)?;
    }
    for path in csv_files(&root.join("golds"))? {
        let name = file_stem(&path)?;
        let ds = store.dataset(&name)?;
        let truth = import_gold_pairs(ds, &std::fs::read_to_string(&path)?, CsvOptions::comma())?;
        store.set_gold_standard(&name, truth)?;
    }
    for path in csv_files(&root.join("experiments"))? {
        let name = file_stem(&path)?;
        let text = std::fs::read_to_string(&path)?;
        let rows = parse_csv(&text, CsvOptions::comma()).map_err(ImportError::from)?;
        let mut iter = rows.into_iter();
        let header = iter.next().ok_or_else(|| PersistError::Malformed {
            path: path.clone(),
            reason: "missing header".into(),
        })?;
        if header.len() != 5 {
            return Err(PersistError::Malformed {
                path,
                reason: format!("expected 5 columns, found {}", header.len()),
            });
        }
        let mut dataset_name: Option<String> = None;
        let mut pairs: Vec<ScoredPair> = Vec::with_capacity(iter.len());
        for row in iter {
            let ds_name = dataset_name.get_or_insert_with(|| row[0].clone());
            if &row[0] != ds_name {
                return Err(PersistError::Malformed {
                    path,
                    reason: "experiment spans multiple datasets".into(),
                });
            }
            let ds = store.dataset(ds_name)?;
            let a = ds
                .resolve_native(&row[1])
                .ok_or_else(|| ImportError::UnknownRecord(row[1].clone()))?;
            let b = ds
                .resolve_native(&row[2])
                .ok_or_else(|| ImportError::UnknownRecord(row[2].clone()))?;
            let similarity = if row[3].is_empty() {
                None
            } else {
                Some(row[3].parse::<f64>().map_err(|_| PersistError::Malformed {
                    path: path.clone(),
                    reason: format!("bad similarity {:?}", row[3]),
                })?)
            };
            let origin = match row[4].as_str() {
                "matcher" => PairOrigin::Matcher,
                "closure" => PairOrigin::Closure,
                other => {
                    return Err(PersistError::Malformed {
                        path,
                        reason: format!("bad origin {other:?}"),
                    })
                }
            };
            pairs.push(ScoredPair {
                pair: frost_core::dataset::RecordPair::new(a, b),
                similarity,
                origin,
            });
        }
        if let Some(ds_name) = dataset_name {
            store.add_experiment(&ds_name, Experiment::new(name, pairs), None)?;
        }
        // An experiment file with only a header is silently skipped.
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::clustering::Clustering;
    use frost_core::dataset::Schema;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("frost-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_store() -> BenchmarkStore {
        let mut ds = Dataset::new("people", Schema::new(["name", "city"]));
        ds.push_record("a", ["Ann, the first", "Berlin"]);
        ds.push_record_opt("b", vec![Some("Anne \"II\"".into()), None]);
        ds.push_record("c", ["Bob\nNewline", "Potsdam"]);
        ds.push_record("d", ["Dora", "Kiel"]);
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 0, 1, 2]))
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::new(
                    "run-1",
                    [
                        ScoredPair::scored((0u32, 1u32), 0.93),
                        ScoredPair::closure((0u32, 2u32)),
                        ScoredPair::unscored((2u32, 3u32)),
                    ],
                ),
                None,
            )
            .unwrap();
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = unique_dir("roundtrip");
        let store = sample_store();
        save(&store, &dir).unwrap();
        let loaded = load(&dir).unwrap();

        assert_eq!(loaded.dataset_names(), store.dataset_names());
        let ds = loaded.dataset("people").unwrap();
        assert_eq!(ds.len(), 4);
        // Tricky values (commas, quotes, newlines, nulls) survive.
        let b = ds.resolve_native("b").unwrap();
        assert_eq!(ds.value(b, "name"), Some("Anne \"II\""));
        assert_eq!(ds.value(b, "city"), None);
        let c = ds.resolve_native("c").unwrap();
        assert_eq!(ds.value(c, "name"), Some("Bob\nNewline"));

        // Gold standard round-trips as the same clustering.
        let truth = loaded.gold_standard("people").unwrap();
        assert_eq!(truth, store.gold_standard("people").unwrap());

        // Experiment pairs, scores and origins survive.
        let exp = loaded.experiment("run-1").unwrap();
        let orig = store.experiment("run-1").unwrap();
        assert_eq!(exp.experiment.pairs(), orig.experiment.pairs());
        assert_eq!(exp.dataset, "people");

        // Evaluations agree between original and reloaded store.
        assert_eq!(
            loaded.confusion_matrix("run-1").unwrap(),
            store.confusion_matrix("run-1").unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_of_missing_directory_is_empty_store() {
        let dir = unique_dir("missing");
        let store = load(&dir).unwrap();
        assert!(store.dataset_names().is_empty());
    }

    #[test]
    fn malformed_experiment_is_rejected() {
        let dir = unique_dir("malformed");
        save(&sample_store(), &dir).unwrap();
        std::fs::write(
            dir.join("experiments").join("bad.csv"),
            "dataset,id1,id2,similarity,origin\npeople,a,b,0.5,teleport\n",
        )
        .unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, PersistError::Malformed { .. }));
        assert!(err.to_string().contains("bad origin"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_record_in_experiment_is_import_error() {
        let dir = unique_dir("unknown");
        save(&sample_store(), &dir).unwrap();
        std::fs::write(
            dir.join("experiments").join("ghost.csv"),
            "dataset,id1,id2,similarity,origin\npeople,a,zz,0.5,matcher\n",
        )
        .unwrap();
        assert!(matches!(
            load(&dir).unwrap_err(),
            PersistError::Import(ImportError::UnknownRecord(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_csv_has_id_header() {
        let store = sample_store();
        let text = dataset_to_csv(store.dataset("people").unwrap());
        assert!(text.starts_with("id,name,city\n"));
    }
}
