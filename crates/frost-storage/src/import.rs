//! CSV importers for datasets, gold standards and experiments.
//!
//! Snowman supports "a range of different dataset and experiment
//! formats and provides a convenient interface for additional custom
//! CSV-based formats" — an importer being little more than CSV options
//! plus a column mapping (§5.1). Gold standards come in the two shapes
//! of §3.1.1: a pair list, or a cluster-id attribute on the dataset
//! itself.

use frost_core::clustering::Clustering;
use frost_core::dataset::{parse_csv, CsvOptions, Dataset, Experiment, Schema, ScoredPair};
use std::fmt;

/// Errors raised during import.
#[derive(Debug, Clone, PartialEq)]
pub enum ImportError {
    /// Underlying CSV parse failure.
    Csv(frost_core::dataset::CsvError),
    /// The input had no header row.
    MissingHeader,
    /// A required column is absent.
    MissingColumn(String),
    /// A record id used in a pair/cluster file is unknown.
    UnknownRecord(String),
    /// A similarity value failed to parse.
    BadSimilarity {
        /// 1-based row.
        row: usize,
        /// Offending text.
        text: String,
    },
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Csv(e) => write!(f, "csv: {e}"),
            ImportError::MissingHeader => write!(f, "input has no header row"),
            ImportError::MissingColumn(c) => write!(f, "missing column {c:?}"),
            ImportError::UnknownRecord(id) => write!(f, "unknown record id {id:?}"),
            ImportError::BadSimilarity { row, text } => {
                write!(f, "row {row}: bad similarity {text:?}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<frost_core::dataset::CsvError> for ImportError {
    fn from(e: frost_core::dataset::CsvError) -> Self {
        ImportError::Csv(e)
    }
}

/// Column mapping of a CSV dataset: which column holds the record id,
/// which columns become attributes (empty cells become nulls).
#[derive(Debug, Clone)]
pub struct DatasetImporter {
    /// CSV dialect.
    pub csv: CsvOptions,
    /// Header name of the id column.
    pub id_column: String,
    /// `None` imports every non-id column; `Some` restricts and orders
    /// the attributes.
    pub attribute_columns: Option<Vec<String>>,
}

impl DatasetImporter {
    /// A comma-CSV importer with an `id` column importing all attributes.
    pub fn standard() -> Self {
        Self {
            csv: CsvOptions::comma(),
            id_column: "id".into(),
            attribute_columns: None,
        }
    }

    /// Parses CSV text into a dataset.
    pub fn import(&self, name: &str, text: &str) -> Result<Dataset, ImportError> {
        let rows = parse_csv(text, self.csv)?;
        let mut iter = rows.into_iter();
        let header = iter.next().ok_or(ImportError::MissingHeader)?;
        let id_idx = header
            .iter()
            .position(|h| h == &self.id_column)
            .ok_or_else(|| ImportError::MissingColumn(self.id_column.clone()))?;
        let attr_indices: Vec<(usize, String)> = match &self.attribute_columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    header
                        .iter()
                        .position(|h| h == c)
                        .map(|i| (i, c.clone()))
                        .ok_or_else(|| ImportError::MissingColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?,
            None => header
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != id_idx)
                .map(|(i, h)| (i, h.clone()))
                .collect(),
        };
        let schema = Schema::new(attr_indices.iter().map(|(_, n)| n.clone()));
        // Pre-size the record table (and its id index) from the parsed
        // row count, and move field strings out of each row instead of
        // cloning them — the importer allocates nothing per row beyond
        // the one values vector that becomes the record.
        let mut ds = Dataset::with_capacity(name, schema, iter.len());
        for mut row in iter {
            let mut values: Vec<Option<String>> = Vec::with_capacity(attr_indices.len());
            for &(i, _) in &attr_indices {
                // The id column may double as an attribute under an
                // explicit selection — clone it; every other column is
                // referenced exactly once (`Schema::new` asserts
                // attribute names are unique, so a repeated selection
                // never reaches this loop) and its field is moved out
                // of the row.
                let v = if i == id_idx {
                    row[i].clone()
                } else {
                    std::mem::take(&mut row[i])
                };
                values.push(if v.is_empty() { None } else { Some(v) });
            }
            ds.push_record_opt(std::mem::take(&mut row[id_idx]), values);
        }
        Ok(ds)
    }
}

/// Imports a gold standard stored as a pair list (`id1,id2` per row,
/// with header). Pairs are transitively closed into a clustering, per
/// §3.1.1 ("the gold standard … corresponds to a final matching
/// solution").
pub fn import_gold_pairs(
    ds: &Dataset,
    text: &str,
    csv: CsvOptions,
) -> Result<Clustering, ImportError> {
    let rows = parse_csv(text, csv)?;
    let mut iter = rows.into_iter();
    iter.next().ok_or(ImportError::MissingHeader)?;
    let mut pairs = Vec::with_capacity(iter.len());
    for row in iter {
        let a = resolve(ds, &row[0])?;
        let b = resolve(ds, &row[1])?;
        if a != b {
            pairs.push((a, b));
        }
    }
    Ok(Clustering::from_pairs(ds.len(), pairs))
}

/// Imports a gold standard from a cluster-id attribute of the dataset
/// itself (§3.1.1's second format). Records with a missing cluster id
/// become singletons.
pub fn import_gold_cluster_attribute(
    ds: &Dataset,
    attribute: &str,
) -> Result<Clustering, ImportError> {
    if ds.schema().index_of(attribute).is_none() {
        return Err(ImportError::MissingColumn(attribute.into()));
    }
    let labels: Vec<String> = ds
        .iter()
        .map(|(id, _)| {
            ds.value(id, attribute)
                .map(str::to_string)
                // Unlabelled records become unique singleton labels.
                .unwrap_or_else(|| format!("\u{0}singleton-{}", id.0))
        })
        .collect();
    Ok(Clustering::from_labels(labels))
}

/// Imports an experiment from CSV rows of `id1,id2[,similarity]` (with
/// header). An empty or absent similarity cell yields an unscored pair.
pub fn import_experiment(
    name: &str,
    ds: &Dataset,
    text: &str,
    csv: CsvOptions,
) -> Result<Experiment, ImportError> {
    let rows = parse_csv(text, csv)?;
    let mut iter = rows.into_iter();
    let header = iter.next().ok_or(ImportError::MissingHeader)?;
    let has_similarity = header.len() >= 3;
    let mut pairs = Vec::with_capacity(iter.len());
    for (i, row) in iter.enumerate() {
        let a = resolve(ds, &row[0])?;
        let b = resolve(ds, &row[1])?;
        if a == b {
            continue;
        }
        let similarity = if has_similarity && !row[2].is_empty() {
            Some(
                row[2]
                    .parse::<f64>()
                    .map_err(|_| ImportError::BadSimilarity {
                        row: i + 2,
                        text: row[2].clone(),
                    })?,
            )
        } else {
            None
        };
        pairs.push(match similarity {
            Some(s) => ScoredPair::scored((a, b), s),
            None => ScoredPair::unscored((a, b)),
        });
    }
    Ok(Experiment::new(name, pairs))
}

fn resolve(ds: &Dataset, native: &str) -> Result<frost_core::dataset::RecordId, ImportError> {
    ds.resolve_native(native)
        .ok_or_else(|| ImportError::UnknownRecord(native.into()))
}

/// Exports an experiment back to `id1,id2,similarity` CSV (the reverse
/// mapping, so third-party tools can ingest Frost's data).
pub fn export_experiment(ds: &Dataset, experiment: &Experiment, csv: CsvOptions) -> String {
    let rows = std::iter::once(vec![
        "id1".to_string(),
        "id2".to_string(),
        "similarity".to_string(),
    ])
    .chain(experiment.pairs().iter().map(|sp| {
        vec![
            ds.native_id(sp.pair.lo()).to_string(),
            ds.native_id(sp.pair.hi()).to_string(),
            sp.similarity.map(|s| s.to_string()).unwrap_or_default(),
        ]
    }));
    frost_core::dataset::write_csv(rows, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATASET_CSV: &str = "id,name,year\nr1,ann,1999\nr2,anne,\nr3,bob,2001\n";

    fn dataset() -> Dataset {
        DatasetImporter::standard()
            .import("d", DATASET_CSV)
            .unwrap()
    }

    #[test]
    fn dataset_import_maps_columns_and_nulls() {
        let ds = dataset();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.schema().attributes(), &["name", "year"]);
        let r2 = ds.resolve_native("r2").unwrap();
        assert_eq!(ds.value(r2, "name"), Some("anne"));
        assert_eq!(ds.value(r2, "year"), None);
    }

    #[test]
    fn dataset_import_with_column_selection() {
        let importer = DatasetImporter {
            csv: CsvOptions::comma(),
            id_column: "id".into(),
            attribute_columns: Some(vec!["year".into()]),
        };
        let ds = importer.import("d", DATASET_CSV).unwrap();
        assert_eq!(ds.schema().attributes(), &["year"]);
    }

    #[test]
    fn dataset_import_with_id_column_as_attribute() {
        // A selection may reuse the id column as an attribute; both
        // uses must keep their value (the move-out-of-the-row
        // optimization only applies to uniquely referenced columns).
        let importer = DatasetImporter {
            csv: CsvOptions::comma(),
            id_column: "id".into(),
            attribute_columns: Some(vec!["name".into(), "id".into()]),
        };
        let ds = importer.import("d", DATASET_CSV).unwrap();
        let r1 = ds.resolve_native("r1").unwrap();
        assert_eq!(ds.record(r1).values()[0].as_deref(), Some("ann"));
        assert_eq!(ds.record(r1).values()[1].as_deref(), Some("r1"));
        assert_eq!(ds.native_id(r1), "r1");
    }

    #[test]
    fn dataset_import_errors() {
        let importer = DatasetImporter::standard();
        assert_eq!(
            importer.import("d", "").unwrap_err(),
            ImportError::MissingHeader
        );
        assert_eq!(
            importer.import("d", "x,y\n1,2\n").unwrap_err(),
            ImportError::MissingColumn("id".into())
        );
        assert!(matches!(
            importer.import("d", "id,a\nr1\n").unwrap_err(),
            ImportError::Csv(_)
        ));
    }

    #[test]
    fn gold_pairs_import_closes_transitively() {
        let ds = dataset();
        let truth = import_gold_pairs(&ds, "id1,id2\nr1,r2\nr2,r1\n", CsvOptions::comma()).unwrap();
        assert_eq!(truth.num_clusters(), 2);
        assert!(truth.same_cluster(
            ds.resolve_native("r1").unwrap(),
            ds.resolve_native("r2").unwrap()
        ));
        assert!(matches!(
            import_gold_pairs(&ds, "id1,id2\nr1,zz\n", CsvOptions::comma()).unwrap_err(),
            ImportError::UnknownRecord(_)
        ));
    }

    #[test]
    fn gold_cluster_attribute_import() {
        let text = "id,name,cluster\nr1,ann,c1\nr2,anne,c1\nr3,bob,\n";
        let ds = DatasetImporter::standard().import("d", text).unwrap();
        let truth = import_gold_cluster_attribute(&ds, "cluster").unwrap();
        assert_eq!(truth.num_clusters(), 2);
        assert!(matches!(
            import_gold_cluster_attribute(&ds, "nope").unwrap_err(),
            ImportError::MissingColumn(_)
        ));
    }

    #[test]
    fn experiment_import_scored_and_unscored() {
        let ds = dataset();
        let e = import_experiment(
            "run",
            &ds,
            "id1,id2,similarity\nr1,r2,0.93\nr1,r3,\n",
            CsvOptions::comma(),
        )
        .unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.pairs()[0].similarity, Some(0.93));
        assert_eq!(e.pairs()[1].similarity, None);
        // Two-column format: all unscored.
        let e2 = import_experiment("run2", &ds, "id1,id2\nr1,r2\n", CsvOptions::comma()).unwrap();
        assert!(!e2.pairs().is_empty());
        assert_eq!(e2.pairs()[0].similarity, None);
    }

    #[test]
    fn experiment_import_bad_similarity() {
        let ds = dataset();
        let err = import_experiment(
            "run",
            &ds,
            "id1,id2,similarity\nr1,r2,high\n",
            CsvOptions::comma(),
        )
        .unwrap_err();
        assert!(matches!(err, ImportError::BadSimilarity { row: 2, .. }));
        assert!(err.to_string().contains("bad similarity"));
    }

    #[test]
    fn experiment_roundtrip_through_export() {
        let ds = dataset();
        let e = import_experiment(
            "run",
            &ds,
            "id1,id2,similarity\nr1,r2,0.5\nr2,r3,0.25\n",
            CsvOptions::comma(),
        )
        .unwrap();
        let text = export_experiment(&ds, &e, CsvOptions::comma());
        let back = import_experiment("run", &ds, &text, CsvOptions::comma()).unwrap();
        assert_eq!(e.pairs(), back.pairs());
    }

    #[test]
    fn semicolon_dialect() {
        let importer = DatasetImporter {
            csv: CsvOptions::semicolon(),
            id_column: "id".into(),
            attribute_columns: None,
        };
        let ds = importer.import("d", "id;name\nr1;ann\n").unwrap();
        assert_eq!(ds.len(), 1);
    }
}
