//! `FROSTB` — the versioned, checksummed binary snapshot of a
//! [`BenchmarkStore`].
//!
//! CSV directories ([`persist`](crate::persist)) stay the *interchange*
//! format — diffable, importable by third-party tools. Snapshots are
//! the *at-rest* format for a long-lived server: one sequential read
//! restores the full store **including the import-time artifacts**
//! (per-experiment clusterings and prebuilt
//! [`RoaringPairSet`](frost_core::dataset::RoaringPairSet) arenas), so
//! `frostd` start-up skips CSV parsing, id interning, union-find and
//! pair-set packing entirely.
//!
//! # Layout
//!
//! ```text
//! offset  size  field
//! 0       6     magic  "FROSTB"
//! 6       2     format version, u16 LE (currently 1)
//! 8       4     section count, u32 LE
//! 12      24·n  section table: tag [u8;4], offset u64, len u64, crc32
//! 12+24n  4     header CRC32 (over bytes 0 .. 12+24n)
//! ...           section payloads, back to back, in table order
//! ```
//!
//! Sections (all integers varint-encoded LEB128 unless noted):
//!
//! * **`DSET`** — datasets: name, schema attributes, records (native
//!   id, null bitmap, present values).
//! * **`GOLD`** — gold standards: dataset name, record count, dense
//!   cluster assignment (one varint per record).
//! * **`EXPT`** — experiments: name, dataset, optional soft KPIs, the
//!   scored pair list (packed pair varint + flags + similarity bits),
//!   the precomputed clustering assignment, and the roaring arenas —
//!   directory `index` delta-varint-encoded, array containers as
//!   per-chunk delta varints, bitmap containers as raw `u64` LE words;
//!   `offsets` are recomputed while streaming, so the arenas are
//!   rebuilt with **no re-packing**
//!   ([`RoaringPairSet::from_arenas`]).
//!
//! Every section carries a CRC32; the header carries its own. Any
//! single corrupted byte — magic, version, table, payload or a
//! checksum itself — is rejected, as is any truncation (pinned by the
//! property tests in `tests/snapshot_properties.rs`).

use crate::store::{BenchmarkStore, StoreError, StoredExperiment};
use frost_core::clustering::Clustering;
use frost_core::dataset::chunked::ARRAY_MAX;
use frost_core::dataset::roaring::BITMAP_WORDS;
use frost_core::dataset::{Dataset, Experiment, PairOrigin, RoaringPairSet, Schema, ScoredPair};
use frost_core::softkpi::{Effort, ExperimentKpis};
use std::fmt;
use std::path::Path;

/// The 6-byte magic at offset 0.
pub const MAGIC: &[u8; 6] = b"FROSTB";
/// The current format version.
pub const VERSION: u16 = 1;

const TAG_DATASETS: [u8; 4] = *b"DSET";
const TAG_GOLDS: [u8; 4] = *b"GOLD";
const TAG_EXPERIMENTS: [u8; 4] = *b"EXPT";

/// Errors raised while writing or reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the `FROSTB` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build writes.
        supported: u16,
    },
    /// A checksum did not match, or a structure was truncated or
    /// internally inconsistent.
    Corrupted {
        /// Which part failed (`header`, `DSET`, …).
        section: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The decoded store violated store-level invariants.
    Store(StoreError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a FROSTB snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            SnapshotError::Corrupted { section, reason } => {
                write!(f, "corrupted snapshot ({section}): {reason}")
            }
            SnapshotError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
impl From<StoreError> for SnapshotError {
    fn from(e: StoreError) -> Self {
        SnapshotError::Store(e)
    }
}

// ---------------------------------------------------------------- crc32

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Shared with the WAL frames ([`crate::wal`]).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ------------------------------------------------------------- encoding

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub(crate) fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    pub(crate) fn string(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    pub(crate) fn corrupt(&self, reason: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupted {
            section: self.section,
            reason: reason.into(),
        }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("unexpected end of section"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| self.corrupt("truncated varint"))?;
            self.pos += 1;
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                // Reject over-long encodings: a zero final limb (for
                // any multi-byte value) or top-limb overflow. Every
                // u64 then has exactly one encoding, which is what
                // makes `to_bytes` a fixpoint of `from_bytes`.
                if (byte == 0 && shift > 0) || (shift == 63 && byte > 1) {
                    return Err(self.corrupt("non-canonical varint"));
                }
                return Ok(v);
            }
        }
        Err(self.corrupt("varint longer than 10 bytes"))
    }

    pub(crate) fn len_capped(&mut self, what: &str, cap: usize) -> Result<usize, SnapshotError> {
        let v = self.varint()?;
        // Every counted structure occupies at least one byte per unit,
        // so a count beyond the remaining section bytes is corruption —
        // checking here keeps `with_capacity` calls allocation-safe.
        if v > cap as u64 {
            return Err(self.corrupt(format!("{what} count {v} exceeds section bounds")));
        }
        Ok(v as usize)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.len_capped("string byte", self.remaining())?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("string is not UTF-8"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    pub(crate) fn finished(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

// ------------------------------------------------------------- sections

fn encode_datasets(store: &BenchmarkStore, w: &mut Writer) -> Result<(), SnapshotError> {
    let names = store.dataset_names();
    w.varint(names.len() as u64);
    for name in names {
        let ds = store.dataset(&name)?;
        w.string(ds.name());
        let attrs = ds.schema().attributes();
        w.varint(attrs.len() as u64);
        for a in attrs {
            w.string(a);
        }
        w.varint(ds.len() as u64);
        let width = attrs.len();
        for r in ds.records() {
            w.string(r.native_id());
            // Null bitmap: bit i set ⇔ attribute i present.
            let mut mask_bytes = vec![0u8; width.div_ceil(8)];
            for i in 0..width {
                if r.value(i).is_some() {
                    mask_bytes[i / 8] |= 1 << (i % 8);
                }
            }
            w.buf.extend_from_slice(&mask_bytes);
            for i in 0..width {
                if let Some(v) = r.value(i) {
                    w.string(v);
                }
            }
        }
    }
    Ok(())
}

fn decode_datasets(bytes: &[u8], store: &mut BenchmarkStore) -> Result<(), SnapshotError> {
    let mut r = Reader::new(bytes, "DSET");
    let count = r.len_capped("dataset", r.remaining())?;
    for _ in 0..count {
        let name = r.string()?;
        let attr_count = r.len_capped("attribute", r.remaining())?;
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            attrs.push(r.string()?);
        }
        let width = attrs.len();
        let record_count = r.len_capped("record", r.remaining())?;
        let mut ds = Dataset::with_capacity(&name, Schema::new(attrs), record_count);
        for _ in 0..record_count {
            let native = r.string()?;
            let mask = r.bytes(width.div_ceil(8))?.to_vec();
            let mut values = Vec::with_capacity(width);
            for i in 0..width {
                if mask[i / 8] & (1 << (i % 8)) != 0 {
                    values.push(Some(r.string()?));
                } else {
                    values.push(None);
                }
            }
            ds.push_record_opt(native, values);
        }
        store.add_dataset(ds)?;
    }
    r.finished()
}

fn encode_clustering(c: &Clustering, w: &mut Writer) {
    w.varint(c.num_records() as u64);
    for i in 0..c.num_records() {
        w.varint(c.cluster_of(frost_core::dataset::RecordId(i as u32)) as u64);
    }
}

fn decode_clustering(r: &mut Reader<'_>) -> Result<Clustering, SnapshotError> {
    let n = r.len_capped("clustering record", r.remaining())?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.varint()?;
        let label = u32::try_from(v).map_err(|_| r.corrupt("cluster label exceeds u32"))?;
        labels.push(label);
    }
    // Stored labels are the dense assignment in first-appearance
    // order, so `from_assignment` reproduces the identical structure.
    Ok(Clustering::from_assignment(&labels))
}

fn encode_golds(store: &BenchmarkStore, w: &mut Writer) -> Result<(), SnapshotError> {
    let with_gold: Vec<String> = store
        .dataset_names()
        .into_iter()
        .filter(|n| store.gold_standard(n).is_ok())
        .collect();
    w.varint(with_gold.len() as u64);
    for name in with_gold {
        w.string(&name);
        encode_clustering(store.gold_standard(&name)?, w);
    }
    Ok(())
}

fn decode_golds(bytes: &[u8], store: &mut BenchmarkStore) -> Result<(), SnapshotError> {
    let mut r = Reader::new(bytes, "GOLD");
    let count = r.len_capped("gold standard", r.remaining())?;
    for _ in 0..count {
        let dataset = r.string()?;
        let truth = decode_clustering(&mut r)?;
        let expected = store.dataset(&dataset)?.len();
        if truth.num_records() != expected {
            return Err(r.corrupt(format!(
                "gold standard for {dataset:?} covers {} records, dataset has {expected}",
                truth.num_records()
            )));
        }
        store.set_gold_standard(&dataset, truth)?;
    }
    r.finished()
}

fn encode_roaring(set: &RoaringPairSet, w: &mut Writer) {
    let (index, _offsets, elems, words) = set.arenas();
    w.varint(index.len() as u64);
    // Directory: strictly ascending u64 entries, delta-encoded.
    let mut prev = 0u64;
    for (i, &entry) in index.iter().enumerate() {
        w.varint(if i == 0 { entry } else { entry - prev });
        prev = entry;
    }
    // Containers in chunk order; offsets are implicit (recomputed on
    // load as the running arena positions).
    let (mut eoff, mut woff) = (0usize, 0usize);
    for &entry in index {
        let card = (entry & 0xFFFF) as usize + 1;
        if card > ARRAY_MAX {
            for &word in &words[woff..woff + BITMAP_WORDS] {
                w.buf.extend_from_slice(&word.to_le_bytes());
            }
            woff += BITMAP_WORDS;
        } else {
            let vals = &elems[eoff..eoff + card];
            let mut prev = 0u16;
            for (i, &v) in vals.iter().enumerate() {
                w.varint(if i == 0 { v as u64 } else { (v - prev) as u64 });
                prev = v;
            }
            eoff += card;
        }
    }
}

fn decode_roaring(r: &mut Reader<'_>) -> Result<RoaringPairSet, SnapshotError> {
    let chunks = r.len_capped("roaring chunk", r.remaining())?;
    let mut index = Vec::with_capacity(chunks);
    let mut prev = 0u64;
    for i in 0..chunks {
        let delta = r.varint()?;
        let entry = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)
                .ok_or_else(|| r.corrupt("directory delta overflows"))?
        };
        index.push(entry);
        prev = entry;
    }
    let mut offsets = Vec::with_capacity(chunks);
    let mut elems: Vec<u16> = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for &entry in &index {
        let card = (entry & 0xFFFF) as usize + 1;
        if card > ARRAY_MAX {
            offsets.push(words.len() as u32);
            let raw = r.bytes(BITMAP_WORDS * 8)?;
            words.extend(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
            );
        } else {
            offsets.push(
                u32::try_from(elems.len()).map_err(|_| r.corrupt("elems arena exceeds u32"))?,
            );
            let mut prev = 0u64;
            for i in 0..card {
                let delta = r.varint()?;
                let v = if i == 0 {
                    delta
                } else {
                    prev.checked_add(delta)
                        .ok_or_else(|| r.corrupt("array delta overflows"))?
                };
                if v > u16::MAX as u64 {
                    return Err(r.corrupt("array element exceeds u16"));
                }
                elems.push(v as u16);
                prev = v;
            }
        }
    }
    RoaringPairSet::from_arenas(index, offsets, elems, words)
        .map_err(|e| r.corrupt(format!("roaring arenas: {e}")))
}

fn encode_experiments(store: &BenchmarkStore, w: &mut Writer) -> Result<(), SnapshotError> {
    let names = store.experiment_names(None);
    w.varint(names.len() as u64);
    for name in names {
        let stored = store.experiment(&name)?;
        w.string(stored.experiment.name());
        w.string(&stored.dataset);
        match &stored.kpis {
            None => w.u8(0),
            Some(k) => {
                w.u8(1);
                w.f64(k.setup.hours);
                w.u8(k.setup.expertise);
                w.f64(k.runtime_seconds);
            }
        }
        let pairs = stored.experiment.pairs();
        w.varint(pairs.len() as u64);
        for sp in pairs {
            let packed = ((sp.pair.lo().0 as u64) << 32) | sp.pair.hi().0 as u64;
            w.varint(packed);
            let mut flags = 0u8;
            if sp.similarity.is_some() {
                flags |= 1;
            }
            if sp.origin == PairOrigin::Closure {
                flags |= 2;
            }
            w.u8(flags);
            if let Some(s) = sp.similarity {
                w.f64(s);
            }
        }
        encode_clustering(&stored.clustering, w);
        encode_roaring(&stored.pair_set, w);
    }
    Ok(())
}

fn decode_experiments(bytes: &[u8], store: &mut BenchmarkStore) -> Result<(), SnapshotError> {
    let mut r = Reader::new(bytes, "EXPT");
    let count = r.len_capped("experiment", r.remaining())?;
    for _ in 0..count {
        let name = r.string()?;
        let dataset = r.string()?;
        let kpis = match r.u8()? {
            0 => None,
            1 => Some(ExperimentKpis {
                setup: Effort {
                    hours: r.f64()?,
                    expertise: r.u8()?,
                },
                runtime_seconds: r.f64()?,
            }),
            other => return Err(r.corrupt(format!("bad KPI flag {other}"))),
        };
        let pair_count = r.len_capped("pair", r.remaining())?;
        let mut pairs = Vec::with_capacity(pair_count);
        for _ in 0..pair_count {
            let packed = r.varint()?;
            let flags = r.u8()?;
            if flags & !3 != 0 {
                return Err(r.corrupt(format!("bad pair flags {flags}")));
            }
            let (lo, hi) = ((packed >> 32) as u32, packed as u32);
            // `RecordPair::new` normalizes but asserts on self-pairs —
            // reject them as corruption instead of panicking.
            if lo == hi {
                return Err(r.corrupt(format!("self-pair ({lo}, {hi})")));
            }
            let similarity = if flags & 1 != 0 { Some(r.f64()?) } else { None };
            pairs.push(ScoredPair {
                pair: frost_core::dataset::RecordPair::new(
                    frost_core::dataset::RecordId(lo),
                    frost_core::dataset::RecordId(hi),
                ),
                similarity,
                origin: if flags & 2 != 0 {
                    PairOrigin::Closure
                } else {
                    PairOrigin::Matcher
                },
            });
        }
        let clustering = decode_clustering(&mut r)?;
        let pair_set = decode_roaring(&mut r)?;
        // The pair list was deduplicated before it was written
        // (`Experiment` is a set); the trusted constructor skips the
        // hash pass that would otherwise dominate load time.
        let experiment = Experiment::from_deduplicated_pairs(name, pairs);
        store.insert_stored(StoredExperiment {
            dataset,
            experiment,
            clustering,
            pair_set,
            kpis,
        })?;
    }
    r.finished()
}

// ------------------------------------------------------------- file API

/// Serializes a store into `FROSTB` bytes.
pub fn to_bytes(store: &BenchmarkStore) -> Result<Vec<u8>, SnapshotError> {
    let mut sections: Vec<([u8; 4], Vec<u8>)> = Vec::with_capacity(3);
    for (tag, encode) in [
        (
            TAG_DATASETS,
            encode_datasets as fn(&BenchmarkStore, &mut Writer) -> Result<(), SnapshotError>,
        ),
        (TAG_GOLDS, encode_golds),
        (TAG_EXPERIMENTS, encode_experiments),
    ] {
        let mut w = Writer::new();
        encode(store, &mut w)?;
        sections.push((tag, w.buf));
    }

    let header_len = 12 + 24 * sections.len() + 4;
    let mut out =
        Vec::with_capacity(header_len + sections.iter().map(|(_, b)| b.len()).sum::<usize>());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = header_len as u64;
    for (tag, body) in &sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(body).to_le_bytes());
        offset += body.len() as u64;
    }
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for (_, body) in &sections {
        out.extend_from_slice(body);
    }
    Ok(out)
}

/// Deserializes `FROSTB` bytes into a store.
pub fn from_bytes(bytes: &[u8]) -> Result<BenchmarkStore, SnapshotError> {
    let corrupt = |reason: &str| SnapshotError::Corrupted {
        section: "header",
        reason: reason.to_string(),
    };
    if bytes.len() < 12 || &bytes[..6] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            supported: VERSION,
        });
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let table_end = 12usize
        .checked_add(
            count
                .checked_mul(24)
                .ok_or_else(|| corrupt("section count overflows"))?,
        )
        .ok_or_else(|| corrupt("section count overflows"))?;
    if bytes.len() < table_end + 4 {
        return Err(corrupt("truncated section table"));
    }
    let stored_crc = u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap());
    if crc32(&bytes[..table_end]) != stored_crc {
        return Err(corrupt("header checksum mismatch"));
    }

    let mut store = BenchmarkStore::new();
    let mut seen = [false; 3];
    for i in 0..count {
        let entry = &bytes[12 + 24 * i..12 + 24 * (i + 1)];
        let tag: [u8; 4] = entry[..4].try_into().unwrap();
        let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(entry[12..20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(entry[20..24].try_into().unwrap());
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| corrupt("section extends past end of file"))?;
        let body = &bytes[offset..end];
        type SectionDecoder = fn(&[u8], &mut BenchmarkStore) -> Result<(), SnapshotError>;
        let (section, decode, slot): (&'static str, SectionDecoder, usize) = match &tag {
            b"DSET" => ("DSET", decode_datasets, 0),
            b"GOLD" => ("GOLD", decode_golds, 1),
            b"EXPT" => ("EXPT", decode_experiments, 2),
            other => {
                return Err(SnapshotError::Corrupted {
                    section: "header",
                    reason: format!("unknown section tag {other:?}"),
                })
            }
        };
        if crc32(body) != crc {
            return Err(SnapshotError::Corrupted {
                section,
                reason: "section checksum mismatch".into(),
            });
        }
        if std::mem::replace(&mut seen[slot], true) {
            return Err(SnapshotError::Corrupted {
                section,
                reason: "duplicate section".into(),
            });
        }
        decode(body, &mut store)?;
    }
    Ok(store)
}

/// Writes a store snapshot to a file, atomically: the bytes land in a
/// sibling temp file first and are renamed over the target, so a
/// crash mid-write can never destroy a previous good snapshot.
pub fn save(store: &BenchmarkStore, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let bytes = to_bytes(store)?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    Ok(())
}

/// Loads a store snapshot from a file (one sequential read).
pub fn load(path: impl AsRef<Path>) -> Result<BenchmarkStore, SnapshotError> {
    from_bytes(&std::fs::read(path)?)
}

/// Whether a path looks like a `FROSTB` snapshot (file starting with
/// the magic).
pub fn is_snapshot(path: impl AsRef<Path>) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 6];
    f.read_exact(&mut head).is_ok() && &head == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::dataset::RecordPair;

    fn sample_store() -> BenchmarkStore {
        let mut ds = Dataset::new("people", Schema::new(["name", "city"]));
        ds.push_record("a", ["Ann, the first", "Berlin"]);
        ds.push_record_opt("b", vec![Some("Anne \"II\"".into()), None]);
        ds.push_record("c", ["Bob\nNewline", "Potsdam"]);
        ds.push_record("d", ["Dora", "Kiel"]);
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 0, 1, 2]))
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::new(
                    "run-1",
                    [
                        ScoredPair::scored((0u32, 1u32), 0.93),
                        ScoredPair::closure((0u32, 2u32)),
                        ScoredPair::unscored((2u32, 3u32)),
                    ],
                ),
                Some(ExperimentKpis {
                    setup: Effort {
                        hours: 2.5,
                        expertise: 40,
                    },
                    runtime_seconds: 1.25,
                }),
            )
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::from_scored_pairs("run-2", [(0u32, 1u32, 0.7), (2, 3, 0.6)]),
                None,
            )
            .unwrap();
        store
    }

    fn assert_stores_equal(a: &BenchmarkStore, b: &BenchmarkStore) {
        assert_eq!(a.dataset_names(), b.dataset_names());
        for name in a.dataset_names() {
            let (da, db) = (a.dataset(&name).unwrap(), b.dataset(&name).unwrap());
            assert_eq!(da.schema().attributes(), db.schema().attributes());
            assert_eq!(da.records(), db.records());
            assert_eq!(a.gold_standard(&name).ok(), b.gold_standard(&name).ok());
        }
        assert_eq!(a.experiment_names(None), b.experiment_names(None));
        for name in a.experiment_names(None) {
            let (ea, eb) = (a.experiment(&name).unwrap(), b.experiment(&name).unwrap());
            assert_eq!(ea.dataset, eb.dataset);
            assert_eq!(ea.experiment.pairs(), eb.experiment.pairs());
            assert_eq!(ea.clustering, eb.clustering);
            assert_eq!(ea.pair_set, eb.pair_set, "roaring arenas must round-trip");
            assert_eq!(ea.kpis.is_some(), eb.kpis.is_some());
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let bytes = to_bytes(&store).unwrap();
        let loaded = from_bytes(&bytes).unwrap();
        assert_stores_equal(&store, &loaded);
        // Derived artifacts agree too.
        assert_eq!(
            store.confusion_matrix("run-1").unwrap(),
            loaded.confusion_matrix("run-1").unwrap()
        );
        // Serialization is deterministic.
        assert_eq!(bytes, to_bytes(&loaded).unwrap());
    }

    #[test]
    fn round_trip_with_bitmap_chunks() {
        // An experiment dense enough to promote a chunk to a bitmap
        // container exercises the raw-words path.
        let n = 6000usize;
        let mut ds = Dataset::with_capacity("big", Schema::new(["x"]), n);
        for i in 0..n {
            ds.push_record(format!("r{i}"), [format!("v{i}")]);
        }
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .add_experiment(
                "big",
                Experiment::from_pairs("dense", (1..n as u32).map(|hi| (0u32, hi))),
                None,
            )
            .unwrap();
        let loaded = from_bytes(&to_bytes(&store).unwrap()).unwrap();
        let stored = loaded.experiment("dense").unwrap();
        assert!(stored.pair_set.bitmap_chunk_count() >= 1);
        assert!(stored.pair_set.contains(&RecordPair::from((0u32, 4321u32))));
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn empty_store_round_trips() {
        let loaded = from_bytes(&to_bytes(&BenchmarkStore::new()).unwrap()).unwrap();
        assert!(loaded.dataset_names().is_empty());
        assert!(loaded.experiment_names(None).is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bytes = to_bytes(&sample_store()).unwrap();
        assert!(matches!(
            from_bytes(b"NOTFROSTB"),
            Err(SnapshotError::BadMagic)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[6] = 99;
        assert!(matches!(
            from_bytes(&wrong_version),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));
        for cut in [3, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_any_corrupted_byte() {
        let bytes = to_bytes(&sample_store()).unwrap();
        // Flipping one bit anywhere must be caught by the magic check,
        // the version check, or a checksum.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(from_bytes(&bad).is_err(), "flip at byte {i} was accepted");
        }
    }

    #[test]
    fn save_load_and_sniffing() {
        let dir = std::env::temp_dir().join(format!("frost-snap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("store.frostb");
        let store = sample_store();
        save(&store, &path).unwrap();
        assert!(is_snapshot(&path));
        assert!(!is_snapshot(dir.join("missing.frostb")));
        let loaded = load(&path).unwrap();
        assert_stores_equal(&store, &loaded);
        // load_auto dispatches on the file shape.
        let via_auto = crate::persist::load_auto(&path).unwrap();
        assert_stores_equal(&store, &via_auto);
        let csv = dir.join("not-a-snapshot.csv");
        std::fs::write(&csv, "id,name\n").unwrap();
        assert!(!is_snapshot(&csv));
        assert!(crate::persist::load_auto(&csv).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
