//! Lock-free log-linear latency histograms — the measurement core the
//! serving layer's telemetry is built on.
//!
//! An HDR-style fixed-bucket histogram: values below `2^sub_bits`
//! land in unit-width buckets, and every power-of-two range above is
//! split into `2^sub_bits` equal sub-buckets, so the relative
//! quantization error is bounded by `2^-sub_bits` across the whole
//! `u64` range. Buckets are relaxed atomics — recording is a handful
//! of `fetch_add`s with no locking, safe from any number of threads —
//! and histograms with the same resolution merge by bucket-wise
//! addition (merge is associative and commutative, so per-thread or
//! per-shard histograms can be combined in any order).
//!
//! Values are unitless `u64`s; the server records durations as
//! nanoseconds and batch sizes as plain counts. Quantiles come back as
//! the *upper bound* of the bucket holding the target rank, so a
//! reported quantile is always ≥ the exact order statistic and within
//! one bucket width of it (the property the proptests pin).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A mergeable, concurrently recordable log-linear histogram.
pub struct Histogram {
    sub_bits: u32,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with `2^sub_bits` sub-buckets per power-of-two
    /// range (relative error ≤ `2^-sub_bits`). `sub_bits` is clamped
    /// to `1..=12` — 5 (≈3 % error, ~15 KB) suits always-on server
    /// metrics, 7 (≈0.8 %, ~58 KB) suits offline bench analysis.
    pub fn new(sub_bits: u32) -> Self {
        let sub_bits = sub_bits.clamp(1, 12);
        let len = ((65 - sub_bits) as usize) << sub_bits;
        let buckets = (0..len).map(|_| AtomicU64::new(0)).collect();
        Self {
            sub_bits,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The resolution this histogram was built with.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// The bucket index holding `value`.
    fn index_of(&self, value: u64) -> usize {
        let unit = 1u64 << self.sub_bits;
        if value < unit {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let group = (exp - self.sub_bits + 1) as usize;
        let offset = ((value >> (exp - self.sub_bits)) & (unit - 1)) as usize;
        (group << self.sub_bits) + offset
    }

    /// The inclusive `[low, high]` range of values sharing `value`'s
    /// bucket — `high - low + 1` is the bucket width a quantile answer
    /// is accurate to.
    pub fn bucket_range(&self, value: u64) -> (u64, u64) {
        let index = self.index_of(value);
        let unit = 1u64 << self.sub_bits;
        if (index as u64) < unit {
            return (index as u64, index as u64);
        }
        let group = index >> self.sub_bits;
        let offset = (index as u64) & (unit - 1);
        let scale = (group - 1) as u32;
        let low = (unit + offset) << scale;
        (low, low + ((1u64 << scale) - 1))
    }

    /// Records one value: three relaxed `fetch_add`s, no locking.
    pub fn record(&self, value: u64) {
        self.buckets[self.index_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds `other`'s buckets into `self` (bucket-wise addition).
    /// Both histograms must share a resolution.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms of different resolution"
        );
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the target rank: ≥ the exact order statistic, within
    /// one bucket width of it. `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut last_nonempty = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            seen += n;
            last_nonempty = self.upper_bound(index);
            if seen >= target {
                return last_nonempty;
            }
        }
        last_nonempty
    }

    /// Inclusive upper value of bucket `index`.
    fn upper_bound(&self, index: usize) -> u64 {
        let unit = 1u64 << self.sub_bits;
        if (index as u64) < unit {
            return index as u64;
        }
        let group = index >> self.sub_bits;
        let offset = (index as u64) & (unit - 1);
        let scale = (group - 1) as u32;
        ((unit + offset) << scale) + ((1u64 << scale) - 1)
    }

    /// The non-empty buckets in ascending value order, as
    /// `(inclusive upper bound, count)` — the Prometheus renderer's
    /// input (it cumulates them into `le` buckets).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(index, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then(|| (self.upper_bound(index), n))
            })
            .collect()
    }
}

/// WAL disk-latency histograms, shared between the durable writer
/// (which records) and the serving layer (which renders them as
/// `frost_wal_*_duration_seconds`). Nanosecond values.
pub struct WalStats {
    /// Duration of each WAL frame append (the `write(2)` half).
    pub append: Histogram,
    /// Duration of each WAL fsync (policy-due syncs and explicit
    /// [`sync`](crate::durable::DurableStore::sync) calls).
    pub fsync: Histogram,
}

impl Default for WalStats {
    fn default() -> Self {
        Self {
            append: Histogram::new(5),
            fsync: Histogram::new(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_region_is_exact() {
        let h = Histogram::new(3);
        for v in 0..8u64 {
            assert_eq!(h.bucket_range(v), (v, v), "value {v} must be exact");
        }
    }

    #[test]
    fn bucket_boundaries_land_in_documented_buckets() {
        // sub_bits = 2: unit region 0..4, then groups of 4 sub-buckets
        // doubling in width: [4,4],[5,5],[6,6],[7,7], [8,9],[10,11],…
        let h = Histogram::new(2);
        assert_eq!(h.bucket_range(4), (4, 4));
        assert_eq!(h.bucket_range(7), (7, 7));
        assert_eq!(h.bucket_range(8), (8, 9));
        assert_eq!(h.bucket_range(9), (8, 9));
        assert_eq!(h.bucket_range(10), (10, 11));
        assert_eq!(h.bucket_range(15), (14, 15));
        assert_eq!(h.bucket_range(16), (16, 19));
        assert_eq!(h.bucket_range(19), (16, 19));
        assert_eq!(h.bucket_range(20), (20, 23));
        // Powers of two start a fresh group; the value below them ends
        // the previous one.
        for exp in 3..63 {
            let v = 1u64 << exp;
            assert_eq!(h.bucket_range(v).0, v, "2^{exp} must open its bucket");
            assert_eq!(
                h.bucket_range(v - 1).1,
                v - 1,
                "2^{exp}-1 must close its bucket"
            );
        }
        // The top of the u64 range is representable.
        assert_eq!(h.bucket_range(u64::MAX).1, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new(5);
        for &v in &[1u64, 100, 1_000, 123_456, u32::MAX as u64, u64::MAX / 3] {
            let (low, high) = h.bucket_range(v);
            assert!(low <= v && v <= high);
            let width = high - low;
            assert!(
                (width as f64) <= (low.max(1) as f64) / 32.0 + 1.0,
                "width {width} too wide for value {v}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new(7);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let (_, p50_hi) = h.bucket_range(500);
        let (_, p99_hi) = h.bucket_range(990);
        assert_eq!(p50, p50_hi);
        assert_eq!(p99, p99_hi);
        assert_eq!(h.quantile(1.0), h.bucket_range(1000).1);
    }

    #[test]
    fn concurrent_recording_preserves_counts() {
        let h = std::sync::Arc::new(Histogram::new(5));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // A spread of magnitudes so every group of
                        // buckets sees contention.
                        h.record((i.wrapping_mul(2_654_435_761).wrapping_add(t)) % 1_000_000);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), THREADS * PER_THREAD);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(
            bucket_total,
            THREADS * PER_THREAD,
            "no record may be lost or double-counted under contention"
        );
    }

    fn snapshot(h: &Histogram) -> (Vec<(u64, u64)>, u64, u64) {
        (h.nonzero_buckets(), h.count(), h.sum())
    }

    proptest! {
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(0u64..1u64 << 40, 0..64),
            b in proptest::collection::vec(0u64..1u64 << 40, 0..64),
            c in proptest::collection::vec(0u64..1u64 << 40, 0..64),
        ) {
            let build = |values: &[u64]| {
                let h = Histogram::new(4);
                for &v in values {
                    h.record(v);
                }
                h
            };
            // (a ⊕ b) ⊕ c
            let left = build(&a);
            left.merge(&build(&b));
            left.merge(&build(&c));
            // a ⊕ (b ⊕ c)
            let bc = build(&b);
            bc.merge(&build(&c));
            let right = build(&a);
            right.merge(&bc);
            prop_assert_eq!(snapshot(&left), snapshot(&right));
        }

        #[test]
        fn quantiles_track_exact_order_statistics(
            unsorted in proptest::collection::vec(0u64..1u64 << 48, 1..256),
            q in 0.0f64..1.0,
        ) {
            let h = Histogram::new(5);
            for &v in &unsorted {
                h.record(v);
            }
            let mut values = unsorted;
            values.sort_unstable();
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank.min(values.len() - 1)];
            let approx = h.quantile(q);
            let (low, high) = h.bucket_range(exact);
            prop_assert!(
                approx >= exact,
                "quantile {approx} below exact order statistic {exact}"
            );
            prop_assert!(
                approx - exact <= high - low,
                "quantile {approx} further than one bucket width from {exact} \
                 (bucket [{low}, {high}])"
            );
        }
    }
}
