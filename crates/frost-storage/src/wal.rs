//! `FROSTW` — the crash-safe write-ahead log over a `FROSTB`
//! snapshot.
//!
//! A durable `frostd` persists every accepted mutation *before*
//! applying it in memory: the operation is encoded as one CRC-framed,
//! length-prefixed record (reusing the FROSTB varint codecs), appended
//! to the WAL and — per the configured [`FsyncPolicy`] — fsynced. On
//! boot the latest snapshot is loaded and the WAL replayed over it.
//!
//! # Layout
//!
//! ```text
//! offset  size  field
//! 0       6     magic  "FROSTW"
//! 6       2     format version, u16 LE (currently 1)
//! 8       8     bound snapshot length, u64 LE
//! 16      4     bound snapshot CRC32
//! 20      4     header CRC32 (over bytes 0 .. 20)
//! 24      ...   frames, back to back
//! ```
//!
//! A frame is `varint(payload_len) | payload | crc32(payload) u32 LE`.
//! The header *binds* the log to the exact snapshot bytes it applies
//! over ([`SnapshotId`] = length + CRC32 of the snapshot file): after
//! a crash between the two renames of a compaction, a leftover WAL
//! belongs to the *old* snapshot and must be discarded, not replayed —
//! the mismatch detects that without changing the `FROSTB` format.
//!
//! # Recovery semantics
//!
//! [`scan`] walks the frames and classifies how the log ends:
//!
//! * [`TailState::Clean`] — the last frame ends exactly at EOF.
//! * [`TailState::TornTail`] — the final frame is incomplete or fails
//!   its CRC *and nothing follows it*: the signature of a crash
//!   mid-append. Recovery truncates to the last valid frame and warns.
//! * [`TailState::Corrupt`] — a frame fails its CRC (or decodes to an
//!   invalid operation) with more bytes *after* it: bit rot, not a
//!   torn append. Recovery refuses loudly — silently dropping
//!   acknowledged writes that have intact frames behind them would be
//!   data loss.
//!
//! In every case `ops` holds the longest valid prefix, so callers with
//! different policies (the boot path, the property tests) share one
//! scanner. Known limitation: a corrupted *length* varint makes the
//! following frame boundary unrecoverable, so such damage is
//! classified as a torn tail even mid-log.

use crate::snapshot::{crc32, Reader, SnapshotError, Writer};
use crate::store::{BenchmarkStore, StoreError};
use frost_core::dataset::{Experiment, PairOrigin, RecordId, RecordPair, ScoredPair};
use frost_core::softkpi::{Effort, ExperimentKpis};
use std::fmt;
use std::time::Duration;

/// The 6-byte magic at offset 0.
pub const WAL_MAGIC: &[u8; 6] = b"FROSTW";
/// The current WAL format version.
pub const WAL_VERSION: u16 = 1;
/// Total header size in bytes.
pub const WAL_HEADER_LEN: u64 = 24;

/// Identity of the snapshot bytes a WAL applies over: file length plus
/// CRC32. Cheap to compute, and any snapshot rewrite changes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotId {
    /// Snapshot file length in bytes.
    pub len: u64,
    /// CRC32 over the whole snapshot file.
    pub crc: u32,
}

/// Computes the [`SnapshotId`] of snapshot bytes.
pub fn snapshot_id(snapshot_bytes: &[u8]) -> SnapshotId {
    SnapshotId {
        len: snapshot_bytes.len() as u64,
        crc: crc32(snapshot_bytes),
    }
}

/// When appended WAL frames are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append — an acknowledged write is durable.
    Always,
    /// Fsync at most once per interval — bounded data loss (at most
    /// the writes of one interval) for much higher import throughput.
    Interval(Duration),
}

/// Errors raised by WAL encoding, scanning or header handling.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The header is missing, malformed, or fails its checksum.
    BadHeader(String),
    /// Mid-log corruption: a frame failed its CRC (or decoded to an
    /// invalid operation) with intact bytes after it.
    Corrupted {
        /// File offset of the bad frame.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "io: {e}"),
            WalError::BadHeader(reason) => write!(f, "bad WAL header: {reason}"),
            WalError::Corrupted { offset, reason } => {
                write!(f, "corrupted WAL frame at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Import an experiment (the deduplicated scored pair list, as an
    /// [`Experiment`] holds it).
    AddExperiment {
        /// Dataset the experiment ran on.
        dataset: String,
        /// Experiment name.
        name: String,
        /// Deduplicated scored pairs.
        pairs: Vec<ScoredPair>,
        /// Optional soft KPIs.
        kpis: Option<ExperimentKpis>,
    },
    /// Remove an experiment.
    DeleteExperiment {
        /// Experiment name.
        name: String,
    },
}

const OP_ADD_EXPERIMENT: u8 = 1;
const OP_DELETE_EXPERIMENT: u8 = 2;

impl WalOp {
    /// Builds the add-op from an experiment about to be inserted.
    pub fn add_experiment(
        dataset: &str,
        experiment: &Experiment,
        kpis: Option<&ExperimentKpis>,
    ) -> Self {
        WalOp::AddExperiment {
            dataset: dataset.to_string(),
            name: experiment.name().to_string(),
            pairs: experiment.pairs().to_vec(),
            kpis: kpis.cloned(),
        }
    }

    /// Applies the operation to a store — the boot-time replay path.
    /// The artifacts (clustering, roaring arenas) are rebuilt exactly
    /// as the original import built them, so a replayed store is
    /// byte-identical to the store that accepted the writes.
    pub fn apply(&self, store: &mut BenchmarkStore) -> Result<(), StoreError> {
        match self {
            WalOp::AddExperiment {
                dataset,
                name,
                pairs,
                kpis,
            } => store.add_experiment(
                dataset,
                Experiment::from_deduplicated_pairs(name.clone(), pairs.clone()),
                *kpis,
            ),
            WalOp::DeleteExperiment { name } => store.remove_experiment(name),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            WalOp::AddExperiment {
                dataset,
                name,
                pairs,
                kpis,
            } => {
                w.u8(OP_ADD_EXPERIMENT);
                w.string(dataset);
                w.string(name);
                match kpis {
                    None => w.u8(0),
                    Some(k) => {
                        w.u8(1);
                        w.f64(k.setup.hours);
                        w.u8(k.setup.expertise);
                        w.f64(k.runtime_seconds);
                    }
                }
                w.varint(pairs.len() as u64);
                for sp in pairs {
                    // Same packed encoding as the FROSTB EXPT section.
                    let packed = ((sp.pair.lo().0 as u64) << 32) | sp.pair.hi().0 as u64;
                    w.varint(packed);
                    let mut flags = 0u8;
                    if sp.similarity.is_some() {
                        flags |= 1;
                    }
                    if sp.origin == PairOrigin::Closure {
                        flags |= 2;
                    }
                    w.u8(flags);
                    if let Some(s) = sp.similarity {
                        w.f64(s);
                    }
                }
            }
            WalOp::DeleteExperiment { name } => {
                w.u8(OP_DELETE_EXPERIMENT);
                w.string(name);
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(payload, "WAL");
        let op = match r.u8()? {
            OP_ADD_EXPERIMENT => {
                let dataset = r.string()?;
                let name = r.string()?;
                let kpis = match r.u8()? {
                    0 => None,
                    1 => Some(ExperimentKpis {
                        setup: Effort {
                            hours: r.f64()?,
                            expertise: r.u8()?,
                        },
                        runtime_seconds: r.f64()?,
                    }),
                    other => return Err(r.corrupt(format!("bad KPI flag {other}"))),
                };
                let pair_count = r.len_capped("pair", r.remaining())?;
                let mut pairs = Vec::with_capacity(pair_count);
                for _ in 0..pair_count {
                    let packed = r.varint()?;
                    let flags = r.u8()?;
                    if flags & !3 != 0 {
                        return Err(r.corrupt(format!("bad pair flags {flags}")));
                    }
                    let (lo, hi) = ((packed >> 32) as u32, packed as u32);
                    if lo == hi {
                        return Err(r.corrupt(format!("self-pair ({lo}, {hi})")));
                    }
                    let similarity = if flags & 1 != 0 { Some(r.f64()?) } else { None };
                    pairs.push(ScoredPair {
                        pair: RecordPair::new(RecordId(lo), RecordId(hi)),
                        similarity,
                        origin: if flags & 2 != 0 {
                            PairOrigin::Closure
                        } else {
                            PairOrigin::Matcher
                        },
                    });
                }
                WalOp::AddExperiment {
                    dataset,
                    name,
                    pairs,
                    kpis,
                }
            }
            OP_DELETE_EXPERIMENT => WalOp::DeleteExperiment { name: r.string()? },
            other => return Err(r.corrupt(format!("unknown op tag {other}"))),
        };
        r.finished()?;
        Ok(op)
    }
}

/// Encodes the 24-byte WAL header binding the log to `id`.
pub fn encode_header(id: SnapshotId) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&id.len.to_le_bytes());
    out.extend_from_slice(&id.crc.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes and validates a WAL header, returning the bound
/// [`SnapshotId`].
pub fn decode_header(bytes: &[u8]) -> Result<SnapshotId, WalError> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(WalError::BadHeader(format!(
            "file too short for a header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..6] != WAL_MAGIC {
        return Err(WalError::BadHeader("bad magic".into()));
    }
    let version = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(WalError::BadHeader(format!(
            "version {version} unsupported (this build reads {WAL_VERSION})"
        )));
    }
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if crc32(&bytes[..20]) != stored_crc {
        return Err(WalError::BadHeader("header checksum mismatch".into()));
    }
    Ok(SnapshotId {
        len: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        crc: u32::from_le_bytes(bytes[16..20].try_into().unwrap()),
    })
}

/// Encodes one operation as a complete frame
/// (`varint(len) | payload | crc32`).
pub fn encode_frame(op: &WalOp) -> Vec<u8> {
    let mut payload = Writer::new();
    op.encode(&mut payload);
    let payload = payload.buf;
    let mut frame = Writer::new();
    frame.varint(payload.len() as u64);
    frame.buf.extend_from_slice(&payload);
    frame.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.buf
}

/// How a scanned WAL ends (see the [module docs](self) for the
/// classification rule).
#[derive(Debug, Clone, PartialEq)]
pub enum TailState {
    /// The last frame ends exactly at EOF.
    Clean,
    /// The final frame is incomplete or bad with nothing after it:
    /// truncate the file to `valid_len` and continue.
    TornTail {
        /// File length of the longest valid prefix.
        valid_len: u64,
    },
    /// A bad frame has intact bytes after it: refuse to boot.
    Corrupt {
        /// File offset of the bad frame.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// The snapshot the log is bound to.
    pub snapshot_id: SnapshotId,
    /// The longest valid prefix of logged operations.
    pub ops: Vec<WalOp>,
    /// How the log ends.
    pub tail: TailState,
    /// File length of the valid prefix (header + intact frames).
    pub valid_len: u64,
}

/// Reads a varint leniently at `pos`, returning `(value, new_pos)` or
/// `None` when the bytes cannot delimit a frame (truncated or
/// malformed) — the caller treats that as a torn tail, since without
/// a length the following frame boundary is unrecoverable.
fn lenient_varint(bytes: &[u8], mut pos: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = *bytes.get(pos)?;
        pos += 1;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            if (byte == 0 && shift > 0) || (shift == 63 && byte > 1) {
                return None; // non-canonical
            }
            return Some((v, pos));
        }
    }
    None
}

/// The result of scanning a headerless frame stream
/// ([`scan_stream`]): the decoded complete-frame prefix plus how many
/// bytes it spanned, so a tailing replica knows exactly where its next
/// poll should resume.
#[derive(Debug)]
pub struct StreamScan {
    /// Operations decoded from the complete frames at the front of the
    /// buffer.
    pub ops: Vec<WalOp>,
    /// Bytes consumed by those frames. Anything past this is an
    /// incomplete frame still in flight — keep it (or drop it and
    /// re-request from `from + consumed`).
    pub consumed: usize,
}

/// Scans a *headerless* run of WAL frames as shipped over the
/// replication stream: decodes every complete frame from the front and
/// reports how many bytes they covered. An incomplete final frame is
/// normal (the primary may flush mid-frame, or the connection may drop
/// mid-frame) and simply isn't consumed; a *complete* frame that fails
/// its CRC or decodes to an invalid op is an error — on a stream there
/// is no torn-tail excuse for a fully delivered bad frame.
pub fn scan_stream(bytes: &[u8]) -> Result<StreamScan, WalError> {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return Ok(StreamScan { ops, consumed: pos });
        }
        // An undecodable or truncated length varint can't delimit a
        // frame yet: wait for more bytes.
        let Some((len, payload_start)) = lenient_varint(bytes, pos) else {
            return Ok(StreamScan { ops, consumed: pos });
        };
        let Some(frame_end) = (len as usize)
            .checked_add(4)
            .and_then(|n| payload_start.checked_add(n))
            .filter(|&e| e <= bytes.len())
        else {
            return Ok(StreamScan { ops, consumed: pos });
        };
        let payload = &bytes[payload_start..payload_start + len as usize];
        let stored_crc = u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().unwrap());
        if crc32(payload) != stored_crc {
            return Err(WalError::Corrupted {
                offset: pos as u64,
                reason: "frame checksum mismatch".into(),
            });
        }
        match WalOp::decode(payload) {
            Ok(op) => ops.push(op),
            Err(e) => {
                return Err(WalError::Corrupted {
                    offset: pos as u64,
                    reason: format!("undecodable op: {e}"),
                })
            }
        }
        pos = frame_end;
    }
}

/// Scans WAL bytes: validates the header, decodes the longest valid
/// prefix of frames and classifies the tail. Only a bad *header* is a
/// hard error here — tail policy is the caller's.
pub fn scan(bytes: &[u8]) -> Result<WalScan, WalError> {
    let snapshot_id = decode_header(bytes)?;
    let mut ops = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        if pos == bytes.len() {
            return Ok(WalScan {
                snapshot_id,
                ops,
                tail: TailState::Clean,
                valid_len: pos as u64,
            });
        }
        let torn = |ops: Vec<WalOp>| {
            Ok(WalScan {
                snapshot_id,
                ops,
                tail: TailState::TornTail {
                    valid_len: pos as u64,
                },
                valid_len: pos as u64,
            })
        };
        // A frame whose length cannot be decoded, or which extends past
        // EOF, cannot be delimited: torn tail.
        let Some((len, payload_start)) = lenient_varint(bytes, pos) else {
            return torn(ops);
        };
        let Some(frame_end) = (len as usize)
            .checked_add(4)
            .and_then(|n| payload_start.checked_add(n))
            .filter(|&e| e <= bytes.len())
        else {
            return torn(ops);
        };
        let payload = &bytes[payload_start..payload_start + len as usize];
        let stored_crc = u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().unwrap());
        let bad = if crc32(payload) != stored_crc {
            Some("frame checksum mismatch".to_string())
        } else {
            match WalOp::decode(payload) {
                Ok(op) => {
                    ops.push(op);
                    None
                }
                Err(e) => Some(format!("undecodable op: {e}")),
            }
        };
        if let Some(reason) = bad {
            // A bad final frame is a torn append; a bad frame with
            // bytes after it is corruption and must be loud.
            return if frame_end == bytes.len() {
                torn(ops)
            } else {
                Ok(WalScan {
                    snapshot_id,
                    ops,
                    tail: TailState::Corrupt {
                        offset: pos as u64,
                        reason,
                    },
                    valid_len: pos as u64,
                })
            };
        }
        pos = frame_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::AddExperiment {
                dataset: "people".into(),
                name: "run-1".into(),
                pairs: vec![
                    ScoredPair::scored((0u32, 1u32), 0.9),
                    ScoredPair::closure((0u32, 2u32)),
                    ScoredPair::unscored((2u32, 3u32)),
                ],
                kpis: Some(ExperimentKpis {
                    setup: Effort {
                        hours: 1.5,
                        expertise: 20,
                    },
                    runtime_seconds: 0.5,
                }),
            },
            WalOp::DeleteExperiment {
                name: "run-0".into(),
            },
            WalOp::AddExperiment {
                dataset: "people".into(),
                name: "run-2".into(),
                pairs: vec![ScoredPair::unscored((1u32, 3u32))],
                kpis: None,
            },
        ]
    }

    fn sample_wal() -> Vec<u8> {
        let mut bytes = encode_header(SnapshotId { len: 123, crc: 456 });
        for op in sample_ops() {
            bytes.extend_from_slice(&encode_frame(&op));
        }
        bytes
    }

    #[test]
    fn header_round_trips_and_rejects_damage() {
        let id = SnapshotId {
            len: 99,
            crc: 0xDEAD_BEEF,
        };
        let header = encode_header(id);
        assert_eq!(header.len(), WAL_HEADER_LEN as usize);
        assert_eq!(decode_header(&header).unwrap(), id);
        assert!(decode_header(&header[..10]).is_err());
        for i in 0..header.len() {
            let mut bad = header.clone();
            bad[i] ^= 0x20;
            assert!(decode_header(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn frames_round_trip() {
        let scan = scan(&sample_wal()).unwrap();
        assert_eq!(scan.ops, sample_ops());
        assert_eq!(scan.tail, TailState::Clean);
        assert_eq!(scan.snapshot_id, SnapshotId { len: 123, crc: 456 });
    }

    #[test]
    fn truncation_is_a_torn_tail() {
        let whole = sample_wal();
        let full = scan(&whole).unwrap();
        assert_eq!(full.ops.len(), 3);
        for cut in WAL_HEADER_LEN as usize..whole.len() {
            let scanned = scan(&whole[..cut]).unwrap();
            match scanned.tail {
                TailState::Clean => assert_eq!(cut as u64, scanned.valid_len),
                TailState::TornTail { valid_len } => {
                    assert!(valid_len <= cut as u64);
                    // The surviving ops are exactly the frames that fit.
                    assert_eq!(scanned.ops, full.ops[..scanned.ops.len()]);
                }
                TailState::Corrupt { .. } => panic!("truncation at {cut} reported corrupt"),
            }
        }
    }

    #[test]
    fn final_frame_damage_is_torn_but_mid_log_damage_is_corrupt() {
        let whole = sample_wal();
        // Flip a byte in the last frame's payload: torn tail.
        let mut torn = whole.clone();
        let last = torn.len() - 6; // inside the final payload/crc
        torn[last] ^= 0x40;
        let scanned = scan(&torn).unwrap();
        assert!(
            matches!(scanned.tail, TailState::TornTail { .. }),
            "{:?}",
            scanned.tail
        );
        assert_eq!(scanned.ops.len(), 2);
        // Flip a byte in the first frame's payload: loud corruption.
        let mut rotten = whole.clone();
        rotten[WAL_HEADER_LEN as usize + 3] ^= 0x40;
        let scanned = scan(&rotten).unwrap();
        match scanned.tail {
            TailState::Corrupt { offset, .. } => assert_eq!(offset, WAL_HEADER_LEN),
            other => panic!("mid-log damage must be loud, got {other:?}"),
        }
        assert!(scanned.ops.is_empty());
    }

    #[test]
    fn apply_replays_onto_a_store() {
        use frost_core::clustering::Clustering;
        use frost_core::dataset::{Dataset, Schema};
        let mut ds = Dataset::new("people", Schema::new(["name"]));
        for id in ["a", "b", "c", "d"] {
            ds.push_record(id, [id]);
        }
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 0, 1, 1]))
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::from_pairs("run-0", [(0u32, 1u32)]),
                None,
            )
            .unwrap();
        for op in sample_ops() {
            op.apply(&mut store).unwrap();
        }
        assert_eq!(store.experiment_names(None), vec!["run-1", "run-2"]);
        let replayed = store.experiment("run-1").unwrap();
        assert_eq!(replayed.experiment.len(), 3);
        assert!(replayed.kpis.is_some());
        // Replay rebuilds the import-time artifacts.
        assert_eq!(replayed.clustering.num_records(), 4);
        assert_eq!(replayed.pair_set.len(), replayed.experiment.len());
    }

    #[test]
    fn stream_scan_consumes_exactly_the_complete_frames() {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for op in sample_ops() {
            stream.extend_from_slice(&encode_frame(&op));
            boundaries.push(stream.len());
        }
        let all = sample_ops();
        for cut in 0..=stream.len() {
            let scanned = scan_stream(&stream[..cut]).unwrap();
            // `consumed` is the largest frame boundary ≤ cut, and the
            // decoded ops are exactly the frames before it.
            let expect = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
            assert_eq!(scanned.consumed, expect, "cut at {cut}");
            assert_eq!(scanned.ops, all[..scanned.ops.len()]);
        }
    }

    #[test]
    fn stream_scan_rejects_a_complete_bad_frame() {
        let mut stream = encode_frame(&sample_ops()[0]);
        let mid = stream.len() / 2;
        stream[mid] ^= 0x40;
        assert!(matches!(
            scan_stream(&stream),
            Err(WalError::Corrupted { offset: 0, .. })
        ));
        // But the same damage while the frame is still incomplete is
        // just "wait for more bytes".
        let scanned = scan_stream(&stream[..stream.len() - 1]).unwrap();
        assert!(scanned.ops.is_empty());
        assert_eq!(scanned.consumed, 0);
    }

    #[test]
    fn empty_log_is_clean() {
        let header = encode_header(SnapshotId { len: 1, crc: 2 });
        let scanned = scan(&header).unwrap();
        assert!(scanned.ops.is_empty());
        assert_eq!(scanned.tail, TailState::Clean);
        assert_eq!(scanned.valid_len, WAL_HEADER_LEN);
    }
}
