//! The durable writer: sequences every accepted mutation through the
//! `FROSTW` WAL before it becomes visible, replays snapshot + WAL on
//! boot, and compacts the log into a fresh `FROSTB` snapshot without
//! stopping reads.
//!
//! # Write protocol
//!
//! A [`DurableStore`] does not own the in-memory [`BenchmarkStore`] —
//! the server keeps that behind its own read/write lock. The writer
//! sequences the durability step:
//!
//! 1. build the [`WalOp`] (validation + expensive artifact
//!    construction happen before this point, under a read lock),
//! 2. [`DurableStore::append`] — frame, append, fsync per policy,
//! 3. apply the op to the in-memory store (cheap, under the write
//!    lock), and only then acknowledge the client.
//!
//! If step 2 fails the frame is rolled back (the WAL is truncated to
//! its pre-append length) so a client retry cannot collide with a
//! ghost of the failed attempt at replay time. An fsync failure
//! additionally *poisons* the writer — after a failed fsync the page
//! cache can no longer be trusted to hold earlier acknowledged frames,
//! so the only honest move is to reject writes until a restart
//! re-reads what actually hit the disk.
//!
//! # Compaction
//!
//! [`DurableStore::compact`] folds the current store into a new
//! snapshot: write `snapshot.tmp`, fsync, atomically rename over the
//! snapshot, then install a fresh header-only WAL the same way.
//! Compaction changes no logical state, so a crash at *any* boundary
//! recovers to the same store: before the snapshot rename the old
//! snapshot + old WAL are intact; after it, the leftover WAL is bound
//! to the old snapshot's [`SnapshotId`] and boot discards it as stale
//! (its ops are already folded into the new snapshot). If the fresh
//! WAL cannot be installed after the snapshot swap, the writer poisons
//! itself: appends to the stale log would be silently discarded at the
//! next boot, which is worse than refusing them.

use crate::fault::{FailFs, RealFs};
use crate::snapshot::{self, SnapshotError};
use crate::store::{BenchmarkStore, StoreError};
use crate::telemetry::WalStats;
use crate::wal::{
    self, encode_frame, encode_header, snapshot_id, FsyncPolicy, SnapshotId, TailState, WalError,
    WalOp, WAL_HEADER_LEN,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Errors raised by the durable write path.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// WAL header or frame problem.
    Wal(WalError),
    /// Snapshot encode/decode problem.
    Snapshot(SnapshotError),
    /// Replay hit a semantic error (e.g. an op referencing a dataset
    /// the snapshot does not contain) — the log and snapshot disagree.
    Replay(StoreError),
    /// The writer refused: an earlier fsync or rollback failure left
    /// disk state unknowable, so writes are rejected until restart.
    Poisoned,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io: {e}"),
            DurableError::Wal(e) => write!(f, "{e}"),
            DurableError::Snapshot(e) => write!(f, "{e}"),
            DurableError::Replay(e) => write!(f, "WAL replay failed: {e:?}"),
            DurableError::Poisoned => write!(
                f,
                "write path poisoned by an earlier I/O failure; restart to recover"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<WalError> for DurableError {
    fn from(e: WalError) -> Self {
        DurableError::Wal(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

/// What boot-time recovery found and did — callers log it so torn
/// tails and stale logs are warned about, not silent.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BootReport {
    /// Operations replayed from the WAL onto the snapshot.
    pub replayed: usize,
    /// Bytes of torn tail truncated away, if any.
    pub truncated_tail: Option<u64>,
    /// Whether a leftover WAL bound to a *different* snapshot was
    /// discarded (the signature of a crash mid-compaction; its ops are
    /// already folded into the surviving snapshot).
    pub discarded_stale_wal: bool,
    /// Whether a fresh WAL was created because none existed.
    pub created_wal: bool,
}

/// The path of the WAL belonging to a snapshot: `<snapshot>.wal`.
pub fn wal_path_for(snapshot: &Path) -> PathBuf {
    let mut os = snapshot.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// The durability state machine for one snapshot + WAL pair. See the
/// [module docs](self) for the write and compaction protocols.
pub struct DurableStore {
    snapshot_path: PathBuf,
    wal_path: PathBuf,
    fs: Arc<dyn FailFs>,
    policy: FsyncPolicy,
    snapshot_id: SnapshotId,
    /// Length of the durable prefix: header + every fully appended
    /// frame. Rollback truncates to this.
    wal_len: u64,
    /// Frames in the durable prefix — the record coordinate that
    /// replication lag is reported in.
    records: u64,
    /// Whether frames have been appended since the last fsync.
    dirty: bool,
    last_sync: Instant,
    poisoned: bool,
    /// Append/fsync duration histograms, shared with whoever renders
    /// them (the HTTP server's `/metrics` endpoint).
    stats: Arc<WalStats>,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("snapshot_path", &self.snapshot_path)
            .field("wal_path", &self.wal_path)
            .field("policy", &self.policy)
            .field("wal_len", &self.wal_len)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl DurableStore {
    /// Opens a snapshot + WAL pair with the production filesystem.
    pub fn open(
        snapshot: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(BenchmarkStore, DurableStore, BootReport), DurableError> {
        Self::open_with(snapshot, policy, Arc::new(RealFs))
    }

    /// Opens with an injectable filesystem: loads the snapshot,
    /// replays the WAL over it (creating one if absent, truncating a
    /// torn tail, discarding a stale log, refusing mid-log
    /// corruption), and returns the recovered store plus the writer.
    pub fn open_with(
        snapshot: impl AsRef<Path>,
        policy: FsyncPolicy,
        fs: Arc<dyn FailFs>,
    ) -> Result<(BenchmarkStore, DurableStore, BootReport), DurableError> {
        let snapshot_path = snapshot.as_ref().to_path_buf();
        let wal_path = wal_path_for(&snapshot_path);
        let snapshot_bytes = fs.read(&snapshot_path)?;
        let mut store = snapshot::from_bytes(&snapshot_bytes)?;
        let id = snapshot_id(&snapshot_bytes);
        // A leftover `.tmp` from an interrupted compaction is garbage
        // on either side of the atomic rename; clear it.
        for tmp in [tmp_path(&snapshot_path), tmp_path(&wal_path)] {
            if fs.exists(&tmp) {
                let _ = fs.remove(&tmp);
            }
        }

        let mut report = BootReport::default();
        let mut durable = DurableStore {
            snapshot_path,
            wal_path,
            fs,
            policy,
            snapshot_id: id,
            wal_len: WAL_HEADER_LEN,
            records: 0,
            dirty: false,
            last_sync: Instant::now(),
            poisoned: false,
            stats: Arc::new(WalStats::default()),
        };

        if !durable.fs.exists(&durable.wal_path) {
            durable.install_fresh_wal(id)?;
            report.created_wal = true;
            return Ok((store, durable, report));
        }

        let wal_bytes = durable.fs.read(&durable.wal_path)?;
        let scan = wal::scan(&wal_bytes)?;
        if scan.snapshot_id != id {
            // Crash between the two renames of a compaction: the log
            // belongs to the previous snapshot and its ops are already
            // folded into this one.
            durable.install_fresh_wal(id)?;
            report.discarded_stale_wal = true;
            return Ok((store, durable, report));
        }
        match scan.tail {
            TailState::Clean => {}
            TailState::TornTail { valid_len } => {
                durable.fs.truncate(&durable.wal_path, valid_len)?;
                durable.fs.sync(&durable.wal_path)?;
                report.truncated_tail = Some(wal_bytes.len() as u64 - valid_len);
            }
            TailState::Corrupt { offset, reason } => {
                // Intact frames follow the damage: refusing is the only
                // way not to silently drop acknowledged writes.
                return Err(WalError::Corrupted { offset, reason }.into());
            }
        }
        for op in &scan.ops {
            op.apply(&mut store).map_err(DurableError::Replay)?;
        }
        report.replayed = scan.ops.len();
        durable.wal_len = scan.valid_len;
        durable.records = scan.ops.len() as u64;
        Ok((store, durable, report))
    }

    /// Atomically installs a header-only WAL bound to `id`.
    fn install_fresh_wal(&mut self, id: SnapshotId) -> Result<(), DurableError> {
        let tmp = tmp_path(&self.wal_path);
        self.fs.write_file(&tmp, &encode_header(id))?;
        self.fs.sync(&tmp)?;
        self.fs.rename(&tmp, &self.wal_path)?;
        self.snapshot_id = id;
        self.wal_len = WAL_HEADER_LEN;
        self.records = 0;
        self.dirty = false;
        Ok(())
    }

    /// Makes one operation durable (append + fsync per policy). On
    /// success the caller applies the op in memory and acknowledges;
    /// on failure the frame has been rolled back, so a retry is safe.
    pub fn append(&mut self, op: &WalOp) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        let frame = encode_frame(op);
        let appending = Instant::now();
        let appended = self.fs.append(&self.wal_path, &frame);
        self.stats.append.record_duration(appending.elapsed());
        if let Err(e) = appended {
            self.rollback();
            return Err(e.into());
        }
        self.wal_len += frame.len() as u64;
        self.records += 1;
        self.dirty = true;
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
        };
        if due {
            if let Err(e) = self.timed_sync() {
                // The op must not be acknowledged, so it must not
                // survive to replay: truncate it away. And after a
                // failed fsync the page cache is no longer trusted to
                // hold *earlier* acknowledged frames either — poison.
                self.wal_len -= frame.len() as u64;
                self.records -= 1;
                self.rollback();
                self.poisoned = true;
                return Err(e.into());
            }
            self.dirty = false;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// Truncates the WAL back to the last durable prefix after a
    /// failed append. If the rollback itself fails, disk and memory
    /// can no longer be reconciled — poison the writer.
    fn rollback(&mut self) {
        if self.fs.truncate(&self.wal_path, self.wal_len).is_err() {
            self.poisoned = true;
        }
    }

    /// Forces an fsync of any unsynced frames (shutdown / drain path).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        if self.dirty {
            if let Err(e) = self.timed_sync() {
                self.poisoned = true;
                return Err(e.into());
            }
            self.dirty = false;
            self.last_sync = Instant::now();
        }
        Ok(())
    }

    /// One WAL fsync, recorded into the
    /// [fsync histogram](WalStats::fsync) whether it succeeds or not.
    fn timed_sync(&self) -> std::io::Result<()> {
        let syncing = Instant::now();
        let synced = self.fs.sync(&self.wal_path);
        self.stats.fsync.record_duration(syncing.elapsed());
        synced
    }

    /// The WAL append/fsync duration histograms (shared handle; the
    /// server's `/metrics` endpoint renders them).
    pub fn wal_stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Replace the stats handle so a store swapped in at runtime (a
    /// replica re-bootstrapping from a fresh snapshot) keeps feeding
    /// the histograms the server already exports.
    pub fn set_wal_stats(&mut self, stats: Arc<WalStats>) {
        self.stats = stats;
    }

    /// Reads the durable WAL prefix back through the store's
    /// filesystem: header plus every fully appended frame. Bytes past
    /// the durable length (a torn append that was rolled back) are
    /// excluded — this is exactly what replication ships.
    pub fn read_wal(&self) -> Result<Vec<u8>, DurableError> {
        let mut bytes = self.fs.read(&self.wal_path)?;
        bytes.truncate(self.wal_len as usize);
        Ok(bytes)
    }

    /// Reads the current snapshot file through the store's filesystem
    /// (the replica-bootstrap payload).
    pub fn read_snapshot(&self) -> Result<Vec<u8>, DurableError> {
        Ok(self.fs.read(&self.snapshot_path)?)
    }

    /// Folds `store` (the current in-memory state, WAL ops included)
    /// into a fresh snapshot and resets the WAL, both via atomic
    /// rename. Logically a no-op: a crash at any boundary recovers to
    /// the same store.
    pub fn compact(&mut self, store: &BenchmarkStore) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        let bytes = snapshot::to_bytes(store)?;
        let new_id = snapshot_id(&bytes);
        let tmp = tmp_path(&self.snapshot_path);
        self.fs.write_file(&tmp, &bytes)?;
        self.fs.sync(&tmp)?;
        self.fs.rename(&tmp, &self.snapshot_path)?;
        // The old WAL is now stale (bound to the replaced snapshot).
        // If the fresh one cannot be installed, further appends would
        // land in a log the next boot discards — refuse them instead.
        if let Err(e) = self.install_fresh_wal(new_id) {
            self.poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    /// Identity of the snapshot the WAL is bound to.
    pub fn snapshot_id(&self) -> SnapshotId {
        self.snapshot_id
    }

    /// Length of the durable WAL prefix (header + intact frames).
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// WAL bytes appended since the snapshot (0 right after
    /// compaction) — the server's compaction trigger input.
    pub fn wal_backlog(&self) -> u64 {
        self.wal_len - WAL_HEADER_LEN
    }

    /// Frames in the durable WAL prefix (0 right after compaction).
    pub fn wal_records(&self) -> u64 {
        self.records
    }

    /// Whether the writer has been poisoned by an I/O failure.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The snapshot path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// The WAL path.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FailMode, FailpointFs};
    use frost_core::clustering::Clustering;
    use frost_core::dataset::{Dataset, Experiment, Schema, ScoredPair};

    fn seed_store() -> BenchmarkStore {
        let mut ds = Dataset::new("people", Schema::new(["name"]));
        for id in ["a", "b", "c", "d"] {
            ds.push_record(id, [id]);
        }
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 0, 1, 1]))
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::from_pairs("seed", [(0u32, 1u32)]),
                None,
            )
            .unwrap();
        store
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "frost-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn add_op(name: &str) -> WalOp {
        WalOp::AddExperiment {
            dataset: "people".into(),
            name: name.into(),
            pairs: vec![ScoredPair::scored((2u32, 3u32), 0.8)],
            kpis: None,
        }
    }

    #[test]
    fn appended_ops_survive_a_reopen() {
        let dir = scratch("reopen");
        let path = dir.join("store.frostb");
        snapshot::save(&seed_store(), &path).unwrap();

        let (mut store, mut durable, report) =
            DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        assert!(report.created_wal);
        for name in ["run-1", "run-2"] {
            let op = add_op(name);
            durable.append(&op).unwrap();
            op.apply(&mut store).unwrap();
        }
        durable
            .append(&WalOp::DeleteExperiment {
                name: "seed".into(),
            })
            .unwrap();
        drop(durable);

        let (reopened, _, report) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 3);
        assert!(!report.created_wal);
        assert_eq!(reopened.experiment_names(None), vec!["run-1", "run-2"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_rolls_back_and_poisons() {
        let dir = scratch("fsync");
        let path = dir.join("store.frostb");
        snapshot::save(&seed_store(), &path).unwrap();
        // Ops at open: write_file + sync + rename (fresh WAL) = 3.
        // First append = op 3, its fsync = op 4 → fail the fsync.
        let fs = Arc::new(FailpointFs::failing_at(4, FailMode::Error));
        let (_, mut durable, _) = DurableStore::open_with(&path, FsyncPolicy::Always, fs).unwrap();
        let before = durable.wal_len();
        assert!(durable.append(&add_op("run-1")).is_err());
        assert_eq!(durable.wal_len(), before, "frame rolled back");
        assert!(durable.poisoned());
        assert!(matches!(
            durable.append(&add_op("run-2")),
            Err(DurableError::Poisoned)
        ));

        // Restart: the rolled-back frame must not replay, so a retry
        // of the same import succeeds.
        let (store, mut durable, report) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(store.experiment_names(None), vec!["seed"]);
        durable.append(&add_op("run-1")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_the_wal_and_preserves_state() {
        let dir = scratch("compact");
        let path = dir.join("store.frostb");
        snapshot::save(&seed_store(), &path).unwrap();
        let (mut store, mut durable, _) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        let op = add_op("run-1");
        durable.append(&op).unwrap();
        op.apply(&mut store).unwrap();
        assert!(durable.wal_backlog() > 0);

        durable.compact(&store).unwrap();
        assert_eq!(durable.wal_backlog(), 0);

        let (reopened, _, report) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 0, "ops folded into the snapshot");
        assert_eq!(reopened.experiment_names(None), vec!["run-1", "seed"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_from_an_interrupted_compaction_is_discarded() {
        let dir = scratch("stale");
        let path = dir.join("store.frostb");
        snapshot::save(&seed_store(), &path).unwrap();
        let (mut store, mut durable, _) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        let op = add_op("run-1");
        durable.append(&op).unwrap();
        op.apply(&mut store).unwrap();
        drop(durable);

        // Simulate the crash window after the snapshot rename but
        // before the WAL reset: the new snapshot (ops folded in) is on
        // disk next to the old WAL.
        snapshot::save(&store, &path).unwrap();
        let (reopened, _, report) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        assert!(report.discarded_stale_wal);
        assert_eq!(report.replayed, 0);
        assert_eq!(reopened.experiment_names(None), vec!["run-1", "seed"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_refuses_to_boot() {
        let dir = scratch("corrupt");
        let path = dir.join("store.frostb");
        snapshot::save(&seed_store(), &path).unwrap();
        let (_, mut durable, _) = DurableStore::open(&path, FsyncPolicy::Always).unwrap();
        durable.append(&add_op("run-1")).unwrap();
        durable.append(&add_op("run-2")).unwrap();
        let wal = durable.wal_path().to_path_buf();
        drop(durable);

        let mut bytes = std::fs::read(&wal).unwrap();
        let mid = WAL_HEADER_LEN as usize + 5; // inside the first frame
        bytes[mid] ^= 0x40;
        std::fs::write(&wal, &bytes).unwrap();
        let err = DurableStore::open(&path, FsyncPolicy::Always).unwrap_err();
        assert!(
            matches!(err, DurableError::Wal(WalError::Corrupted { .. })),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
