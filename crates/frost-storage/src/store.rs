//! The in-memory benchmark store with import-time optimization.

use frost_core::clustering::Clustering;
use frost_core::dataset::{Dataset, Experiment, RoaringPairSet};
use frost_core::diagram::{DiagramEngine, DiagramPoint};
use frost_core::metrics::confusion::ConfusionMatrix;
use frost_core::softkpi::ExperimentKpis;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// No experiment registered under this name.
    UnknownExperiment(String),
    /// No gold standard registered for this dataset.
    NoGoldStandard(String),
    /// The object exists already.
    AlreadyExists(String),
    /// The experiment references records outside the dataset.
    RecordOutOfRange {
        /// Experiment name.
        experiment: String,
        /// Dataset size.
        dataset_len: usize,
    },
    /// A write request carried an unusable payload (malformed CSV,
    /// unresolvable record ids, a bad name).
    InvalidInput(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            StoreError::UnknownExperiment(n) => write!(f, "unknown experiment {n:?}"),
            StoreError::NoGoldStandard(n) => write!(f, "dataset {n:?} has no gold standard"),
            StoreError::AlreadyExists(n) => write!(f, "{n:?} already exists"),
            StoreError::RecordOutOfRange {
                experiment,
                dataset_len,
            } => write!(
                f,
                "experiment {experiment:?} references records beyond the dataset ({dataset_len} records)"
            ),
            StoreError::InvalidInput(reason) => write!(f, "invalid input: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// An experiment as stored: the raw pairs plus the import-time
/// pre-computed clustering (§5.3's optimization).
#[derive(Debug, Clone)]
pub struct StoredExperiment {
    /// Dataset the experiment ran on.
    pub dataset: String,
    /// The experiment (pairs, scores, origins).
    pub experiment: Experiment,
    /// Pre-computed transitive-closure clustering.
    pub clustering: Clustering,
    /// The experiment's match pairs as a prebuilt two-level roaring
    /// set: the set-heavy views (N-Intersection comparisons, consensus
    /// signals) reuse these arenas instead of re-packing the pair list
    /// per request, and `FROSTB` snapshots persist them verbatim.
    pub pair_set: RoaringPairSet,
    /// Optional per-experiment soft KPIs (§3.3).
    pub kpis: Option<ExperimentKpis>,
}

/// Cache key for diagram series: `(experiment, engine, sample count)`.
type DiagramKey = (String, DiagramEngine, usize);

/// The benchmark store: datasets, gold standards and experiments, with
/// cached evaluation results. Reads are lock-free snapshots; the caches
/// sit behind a [`RwLock`] so a shared (multi-user) deployment can
/// evaluate concurrently (§5.2 allows both local and shared hosting).
#[derive(Default)]
pub struct BenchmarkStore {
    datasets: HashMap<String, Dataset>,
    gold_standards: HashMap<String, Clustering>,
    experiments: HashMap<String, StoredExperiment>,
    diagram_cache: RwLock<HashMap<DiagramKey, Vec<DiagramPoint>>>,
    matrix_cache: RwLock<HashMap<String, ConfusionMatrix>>,
}

impl fmt::Debug for BenchmarkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkStore")
            .field("datasets", &self.dataset_names())
            .field("experiments", &self.experiment_names(None))
            .finish_non_exhaustive()
    }
}

impl BenchmarkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset.
    pub fn add_dataset(&mut self, dataset: Dataset) -> Result<(), StoreError> {
        let name = dataset.name().to_string();
        if self.datasets.contains_key(&name) {
            return Err(StoreError::AlreadyExists(name));
        }
        self.datasets.insert(name, dataset);
        Ok(())
    }

    /// Registers (or replaces) the gold standard of a dataset.
    pub fn set_gold_standard(
        &mut self,
        dataset: &str,
        truth: Clustering,
    ) -> Result<(), StoreError> {
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| StoreError::UnknownDataset(dataset.into()))?;
        assert_eq!(
            truth.num_records(),
            ds.len(),
            "gold standard covers {} records, dataset has {}",
            truth.num_records(),
            ds.len()
        );
        self.gold_standards.insert(dataset.into(), truth);
        self.matrix_cache.write().clear();
        self.diagram_cache.write().clear();
        Ok(())
    }

    /// Imports an experiment, performing the §5.3 import-time
    /// optimization (clustering construction). `O(|Matches| · α(|D|))`
    /// after the dataset's ID interning.
    pub fn add_experiment(
        &mut self,
        dataset: &str,
        experiment: Experiment,
        kpis: Option<ExperimentKpis>,
    ) -> Result<(), StoreError> {
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| StoreError::UnknownDataset(dataset.into()))?;
        let name = experiment.name().to_string();
        if self.experiments.contains_key(&name) {
            return Err(StoreError::AlreadyExists(name));
        }
        let n = ds.len();
        if experiment
            .pairs()
            .iter()
            .any(|sp| sp.pair.hi().index() >= n)
        {
            return Err(StoreError::RecordOutOfRange {
                experiment: name,
                dataset_len: n,
            });
        }
        let clustering = Clustering::from_experiment(n, &experiment);
        let pair_set = experiment.roaring_pair_set();
        self.experiments.insert(
            name,
            StoredExperiment {
                dataset: dataset.into(),
                experiment,
                clustering,
                pair_set,
                kpis,
            },
        );
        Ok(())
    }

    /// Inserts an experiment whose import-time artifacts (clustering,
    /// roaring pair set) are already built — the `FROSTB` snapshot
    /// loader's fast path, which skips the union-find and arena
    /// construction that [`add_experiment`](Self::add_experiment)
    /// performs. The caller vouches that the artifacts belong to the
    /// experiment; the cheap structural checks (record range, sizes)
    /// still run so a malformed source cannot plant ids that panic
    /// record lookups later.
    pub fn insert_stored(&mut self, stored: StoredExperiment) -> Result<(), StoreError> {
        let ds = self
            .datasets
            .get(&stored.dataset)
            .ok_or_else(|| StoreError::UnknownDataset(stored.dataset.clone()))?;
        let name = stored.experiment.name().to_string();
        if self.experiments.contains_key(&name) {
            return Err(StoreError::AlreadyExists(name));
        }
        let n = ds.len();
        // The prebuilt set must describe the same pair list: the pair
        // list is deduplicated, so the counts must agree (full
        // containment would cost a sort; the count catches a set that
        // was paired with the wrong experiment).
        if stored.clustering.num_records() != n
            || stored.pair_set.len() != stored.experiment.len()
            || stored
                .experiment
                .pairs()
                .iter()
                .any(|sp| sp.pair.hi().index() >= n)
        {
            return Err(StoreError::RecordOutOfRange {
                experiment: name,
                dataset_len: n,
            });
        }
        self.experiments.insert(name, stored);
        Ok(())
    }

    /// Removes an experiment and its cached results.
    pub fn remove_experiment(&mut self, name: &str) -> Result<(), StoreError> {
        self.experiments
            .remove(name)
            .ok_or_else(|| StoreError::UnknownExperiment(name.into()))?;
        self.matrix_cache.write().remove(name);
        self.diagram_cache
            .write()
            .retain(|(exp, _, _), _| exp != name);
        Ok(())
    }

    /// Dataset lookup.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, StoreError> {
        self.datasets
            .get(name)
            .ok_or_else(|| StoreError::UnknownDataset(name.into()))
    }

    /// Gold-standard lookup.
    pub fn gold_standard(&self, dataset: &str) -> Result<&Clustering, StoreError> {
        self.gold_standards
            .get(dataset)
            .ok_or_else(|| StoreError::NoGoldStandard(dataset.into()))
    }

    /// Experiment lookup.
    pub fn experiment(&self, name: &str) -> Result<&StoredExperiment, StoreError> {
        self.experiments
            .get(name)
            .ok_or_else(|| StoreError::UnknownExperiment(name.into()))
    }

    /// All dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.datasets.keys().cloned().collect();
        v.sort();
        v
    }

    /// All experiment names (optionally restricted to a dataset), sorted.
    pub fn experiment_names(&self, dataset: Option<&str>) -> Vec<String> {
        let mut v: Vec<String> = self
            .experiments
            .iter()
            .filter(|(_, e)| dataset.is_none_or(|d| e.dataset == d))
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    /// The confusion matrix of an experiment against its dataset's gold
    /// standard, cached after the first computation.
    pub fn confusion_matrix(&self, experiment: &str) -> Result<ConfusionMatrix, StoreError> {
        if let Some(m) = self.matrix_cache.read().get(experiment) {
            return Ok(*m);
        }
        let stored = self.experiment(experiment)?;
        let truth = self.gold_standard(&stored.dataset)?;
        let matrix = ConfusionMatrix::from_clusterings(&stored.clustering, truth);
        self.matrix_cache
            .write()
            .insert(experiment.to_string(), matrix);
        Ok(matrix)
    }

    /// A metric/metric diagram series for an experiment, cached per
    /// `(experiment, engine, s)`.
    pub fn diagram_series(
        &self,
        experiment: &str,
        engine: DiagramEngine,
        s: usize,
    ) -> Result<Vec<DiagramPoint>, StoreError> {
        let key = (experiment.to_string(), engine, s);
        if let Some(points) = self.diagram_cache.read().get(&key) {
            return Ok(points.clone());
        }
        let stored = self.experiment(experiment)?;
        let ds = self.dataset(&stored.dataset)?;
        let truth = self.gold_standard(&stored.dataset)?;
        let points = engine.confusion_series(ds.len(), truth, &stored.experiment, s);
        self.diagram_cache.write().insert(key, points.clone());
        Ok(points)
    }

    /// Diagram series for several experiments at once — the
    /// multi-experiment N-Metrics sweep. Cached series are reused;
    /// the uncached remainder is sharded across rayon tasks
    /// ([`DiagramEngine::confusion_series_multi`]), then inserted into
    /// the cache under one write lock. Results are in input order.
    pub fn diagram_series_multi(
        &self,
        experiments: &[&str],
        engine: DiagramEngine,
        s: usize,
    ) -> Result<Vec<Vec<DiagramPoint>>, StoreError> {
        let mut out: Vec<Option<Vec<DiagramPoint>>> = vec![None; experiments.len()];
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = self.diagram_cache.read();
            for (i, name) in experiments.iter().enumerate() {
                match cache.get(&(name.to_string(), engine, s)) {
                    Some(points) => out[i] = Some(points.clone()),
                    None => missing.push(i),
                }
            }
        }
        if !missing.is_empty() {
            // Resolve all store lookups up front (borrow checks + the
            // per-experiment dataset sizes), then sweep in parallel.
            // The parallel engine requires one shared ground truth, so
            // group the misses by dataset.
            let mut by_dataset: HashMap<String, Vec<usize>> = HashMap::new();
            for &i in &missing {
                let stored = self.experiment(experiments[i])?;
                by_dataset
                    .entry(stored.dataset.clone())
                    .or_default()
                    .push(i);
            }
            let mut computed: Vec<(usize, Vec<DiagramPoint>)> = Vec::with_capacity(missing.len());
            for (dataset, indices) in by_dataset {
                let ds = self.dataset(&dataset)?;
                let truth = self.gold_standard(&dataset)?;
                let exps: Vec<&Experiment> = indices
                    .iter()
                    .map(|&i| Ok(&self.experiment(experiments[i])?.experiment))
                    .collect::<Result<_, StoreError>>()?;
                let series = engine.confusion_series_multi(ds.len(), truth, &exps, s);
                computed.extend(indices.into_iter().zip(series));
            }
            let mut cache = self.diagram_cache.write();
            for (i, points) in computed {
                cache.insert((experiments[i].to_string(), engine, s), points.clone());
                out[i] = Some(points);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect())
    }

    /// Whether a diagram series is already cached (test/metrics hook).
    pub fn diagram_cached(&self, experiment: &str, engine: DiagramEngine, s: usize) -> bool {
        self.diagram_cache
            .read()
            .contains_key(&(experiment.to_string(), engine, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_core::dataset::Schema;

    fn store_with_data() -> BenchmarkStore {
        let mut ds = Dataset::new("people", Schema::new(["name"]));
        for (id, name) in [("a", "ann"), ("b", "anne"), ("c", "bob"), ("d", "bobby")] {
            ds.push_record(id, [name]);
        }
        let mut store = BenchmarkStore::new();
        store.add_dataset(ds).unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 0, 1, 1]))
            .unwrap();
        store
            .add_experiment(
                "people",
                Experiment::from_scored_pairs("run-1", [(0u32, 1u32, 0.9), (0, 2, 0.4)]),
                None,
            )
            .unwrap();
        store
    }

    #[test]
    fn crud_and_lookup() {
        let store = store_with_data();
        assert_eq!(store.dataset_names(), vec!["people"]);
        assert_eq!(store.experiment_names(None), vec!["run-1"]);
        assert_eq!(store.experiment_names(Some("people")), vec!["run-1"]);
        assert_eq!(store.experiment_names(Some("other")), Vec::<String>::new());
        assert!(store.dataset("nope").is_err());
        assert!(store.experiment("nope").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut store = store_with_data();
        let err = store
            .add_dataset(Dataset::new("people", Schema::new(["x"])))
            .unwrap_err();
        assert_eq!(err, StoreError::AlreadyExists("people".into()));
        let err = store
            .add_experiment(
                "people",
                Experiment::from_pairs("run-1", [(0u32, 1u32)]),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::AlreadyExists(_)));
    }

    #[test]
    fn insert_stored_validates_ranges_and_names() {
        let mut store = store_with_data();
        let make = |name: &str, hi: u32| {
            // Clustering built directly (not via union-find) so even
            // out-of-range pairs reach insert_stored's own checks.
            let experiment = Experiment::from_pairs(name, [(0u32, hi)]);
            StoredExperiment {
                dataset: "people".into(),
                clustering: Clustering::from_assignment(&[0, 0, 1, 1]),
                pair_set: experiment.roaring_pair_set(),
                experiment,
                kpis: None,
            }
        };
        // Out-of-range pair ids must be rejected even on the trusted
        // path — they would panic record lookups later.
        assert!(matches!(
            store.insert_stored(make("evil", 99)),
            Err(StoreError::RecordOutOfRange { .. })
        ));
        // Clustering size mismatch likewise.
        let mut mismatched = make("off", 1);
        mismatched.clustering = Clustering::from_assignment(&[0, 0]);
        assert!(matches!(
            store.insert_stored(mismatched),
            Err(StoreError::RecordOutOfRange { .. })
        ));
        // A prebuilt set that does not match the pair list (wrong
        // cardinality) is rejected too.
        let mut wrong_set = make("swapped", 1);
        wrong_set.pair_set =
            Experiment::from_pairs("other", [(0u32, 1u32), (2, 3)]).roaring_pair_set();
        assert!(matches!(
            store.insert_stored(wrong_set),
            Err(StoreError::RecordOutOfRange { .. })
        ));
        let mut unknown = make("ghost", 1);
        unknown.dataset = "nope".into();
        assert!(matches!(
            store.insert_stored(unknown),
            Err(StoreError::UnknownDataset(_))
        ));
        store.insert_stored(make("ok", 1)).unwrap();
        assert!(matches!(
            store.insert_stored(make("ok", 1)),
            Err(StoreError::AlreadyExists(_))
        ));
        assert_eq!(store.experiment("ok").unwrap().experiment.len(), 1);
    }

    #[test]
    fn out_of_range_experiment_rejected() {
        let mut store = store_with_data();
        let err = store
            .add_experiment(
                "people",
                Experiment::from_pairs("bad", [(0u32, 99u32)]),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::RecordOutOfRange { .. }));
    }

    #[test]
    fn import_precomputes_clustering() {
        let store = store_with_data();
        let stored = store.experiment("run-1").unwrap();
        assert_eq!(stored.clustering.num_records(), 4);
        // 0-1 and 0-2 connect into one cluster of 3 → closed.
        assert_eq!(stored.clustering.num_clusters(), 2);
    }

    #[test]
    fn confusion_matrix_cached() {
        let store = store_with_data();
        let m1 = store.confusion_matrix("run-1").unwrap();
        // Clustered experiment {0,1,2} → TP 1 ({0,1}), FP 2 ({0,2},{1,2}), FN 1.
        assert_eq!(m1, ConfusionMatrix::new(1, 2, 1, 2));
        let m2 = store.confusion_matrix("run-1").unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn diagram_cache_round_trip() {
        let store = store_with_data();
        assert!(!store.diagram_cached("run-1", DiagramEngine::Optimized, 3));
        let a = store
            .diagram_series("run-1", DiagramEngine::Optimized, 3)
            .unwrap();
        assert!(store.diagram_cached("run-1", DiagramEngine::Optimized, 3));
        let b = store
            .diagram_series("run-1", DiagramEngine::Optimized, 3)
            .unwrap();
        assert_eq!(a, b);
        // Both engines agree.
        let naive = store
            .diagram_series("run-1", DiagramEngine::Naive, 3)
            .unwrap();
        assert_eq!(a, naive);
    }

    #[test]
    fn multi_series_matches_single_and_fills_cache() {
        let mut store = store_with_data();
        store
            .add_experiment(
                "people",
                Experiment::from_scored_pairs("run-2", [(2u32, 3u32, 0.8)]),
                None,
            )
            .unwrap();
        // Warm one of the two so the multi call mixes cached + fresh.
        let single = store
            .diagram_series("run-1", DiagramEngine::Optimized, 3)
            .unwrap();
        let multi = store
            .diagram_series_multi(&["run-1", "run-2"], DiagramEngine::Optimized, 3)
            .unwrap();
        assert_eq!(multi.len(), 2);
        assert_eq!(multi[0], single);
        assert_eq!(
            multi[1],
            store
                .diagram_series("run-2", DiagramEngine::Optimized, 3)
                .unwrap()
        );
        assert!(store.diagram_cached("run-2", DiagramEngine::Optimized, 3));
        assert!(matches!(
            store.diagram_series_multi(&["nope"], DiagramEngine::Optimized, 3),
            Err(StoreError::UnknownExperiment(_))
        ));
    }

    #[test]
    fn remove_experiment_clears_caches() {
        let mut store = store_with_data();
        store.confusion_matrix("run-1").unwrap();
        store
            .diagram_series("run-1", DiagramEngine::Optimized, 3)
            .unwrap();
        store.remove_experiment("run-1").unwrap();
        assert!(store.experiment("run-1").is_err());
        assert!(!store.diagram_cached("run-1", DiagramEngine::Optimized, 3));
        assert!(matches!(
            store.remove_experiment("run-1"),
            Err(StoreError::UnknownExperiment(_))
        ));
    }

    #[test]
    fn gold_standard_replacement_invalidates_cache() {
        let mut store = store_with_data();
        let before = store.confusion_matrix("run-1").unwrap();
        store
            .set_gold_standard("people", Clustering::from_assignment(&[0, 1, 2, 3]))
            .unwrap();
        let after = store.confusion_matrix("run-1").unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn error_display() {
        let e = StoreError::UnknownDataset("x".into());
        assert!(e.to_string().contains("unknown dataset"));
    }
}
