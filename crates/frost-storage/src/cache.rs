//! A sharded, generation-stamped, byte-budgeted LRU cache for derived
//! artifacts.
//!
//! The long-lived `frostd` server memoizes rendered results — diagram
//! series, Venn tables, comparison views — keyed by the canonical
//! request. The cache is generic over its value type so the server can
//! stack *tiers* with one invalidation rule: a first tier of rendered
//! JSON bodies (`Arc<str>`, the default) and a second tier of fully
//! serialized HTTP response bytes (`Arc<[u8]>` behind a server-side
//! wrapper), both stamped with the same store generation. Three
//! properties matter for a shared deployment (§5.2 allows both local
//! and hosted instances):
//!
//! * **Sharded locking** — keys hash onto independent mutex-guarded
//!   shards, so concurrent readers of different requests never contend
//!   on one lock.
//! * **Generation stamping** — every entry records the store
//!   generation it was computed under. A mutation bumps the generation
//!   ([`ShardedCache::invalidate`]), which logically evicts every
//!   older entry at once: a stale entry is treated as a miss and
//!   dropped lazily on the next lookup. A compute that *straddles* a
//!   mutation is also safe, because the writer stamps the entry with
//!   the generation it observed **before** computing
//!   ([`ShardedCache::begin`]) and [`ShardedCache::insert`] refuses
//!   the entry when that stamp is no longer current. Entries inserted
//!   via [`ShardedCache::begin_scoped`] /
//!   [`ShardedCache::insert_scoped`] are additionally stamped with the
//!   named *scopes* they read, so a write invalidates only what it
//!   touched ([`ShardedCache::invalidate_scopes`]).
//! * **Bounded memory, deterministic eviction** — every entry carries
//!   its tracked byte size ([`CacheWeight`]), each shard carries a
//!   byte budget ([`ShardedCache::set_budget`]) alongside the entry
//!   cap, and going over either bound evicts **stale entries first**
//!   (anything an intervening mutation already invalidated), then the
//!   **least-recently-used** live entry — never an arbitrary
//!   map-iteration victim. A flood of distinct request shapes
//!   therefore cannot grow the daemon's resident set past the
//!   configured budget, and hot entries survive the churn.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Entries per shard before insertion evicts (stale first, then the
/// least-recently-used) — the shape-count bound that predates the byte
/// budget and still caps pathological tiny-entry floods.
const MAX_SHARD_ENTRIES: usize = 512;

/// Recency-queue slack before compaction: the lazy LRU queue may hold
/// superseded touch records, and is rebuilt once it exceeds twice the
/// live entry count (plus headroom for small shards).
const ORDER_SLACK: usize = 16;

/// The tracked byte size of a cached value — the payload bytes an
/// entry pins (keys are accounted separately). Implemented by both
/// server tiers so the cache can enforce a byte budget.
pub trait CacheWeight {
    /// Approximate heap bytes held by this value.
    fn weight(&self) -> usize;
}

impl CacheWeight for Arc<str> {
    fn weight(&self) -> usize {
        self.len()
    }
}

impl CacheWeight for Arc<[u8]> {
    fn weight(&self) -> usize {
        self.len()
    }
}

impl CacheWeight for (Arc<[u8]>, usize) {
    fn weight(&self) -> usize {
        self.0.len()
    }
}

struct Entry<V> {
    generation: u64,
    /// The scope generations observed at compute time; the entry is
    /// stale as soon as any listed scope has been bumped past its
    /// recorded value. Empty for scope-blind entries.
    scopes: Box<[(String, u64)]>,
    value: V,
    /// Tracked size: key bytes + value weight.
    bytes: usize,
    /// The recency tick of this entry's latest touch; an older tick
    /// queued in [`ShardInner::order`] is a superseded record.
    touched: u64,
}

/// One lock domain: the entry map plus its LRU bookkeeping.
struct ShardInner<V> {
    map: HashMap<Arc<str>, Entry<V>>,
    /// Lazy recency queue, oldest first. Each touch pushes a
    /// `(tick, key)` record; a record whose tick no longer matches the
    /// entry's `touched` is skipped on pop (the entry was used again
    /// later), so both touches and evictions stay amortized O(1).
    order: VecDeque<(u64, Arc<str>)>,
    /// Monotonic touch counter (shard-local).
    tick: u64,
    /// Tracked bytes currently held by `map`.
    bytes: usize,
}

impl<V> ShardInner<V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
            bytes: 0,
        }
    }

    fn touch(&mut self, key: &Arc<str>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(key) {
            e.touched = tick;
        }
        self.order.push_back((tick, Arc::clone(key)));
        if self.order.len() > self.map.len() * 2 + ORDER_SLACK {
            let map = &self.map;
            self.order
                .retain(|(t, k)| map.get(k).is_some_and(|e| e.touched == *t));
        }
    }

    fn remove(&mut self, key: &str) -> bool {
        match self.map.remove(key) {
            Some(e) => {
                self.bytes -= e.bytes;
                true
            }
            None => false,
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

type Shard<V> = Mutex<ShardInner<V>>;

/// The stamp for a scoped compute: the global generation plus every
/// scope generation observed **before** the compute started. Produced
/// by [`ShardedCache::begin_scoped`], consumed by
/// [`ShardedCache::insert_scoped`].
#[derive(Debug, Clone)]
pub struct ScopedStamp {
    generation: u64,
    scopes: Box<[(String, u64)]>,
}

/// The cache, generic over the cached value (cheaply cloneable —
/// tiers store `Arc`s). See the [module docs](self) for the
/// invalidation and eviction rules.
pub struct ShardedCache<V: Clone + CacheWeight = Arc<str>> {
    shards: Box<[Shard<V>]>,
    /// Current store generation; entries stamped with an older value
    /// are stale.
    generation: AtomicU64,
    /// Per-scope generations (absent scope = 0). Lock order: a shard
    /// lock may be held when taking this lock, never the reverse.
    scope_gens: Mutex<HashMap<String, u64>>,
    /// Total tracked-byte budget across all shards (each shard is
    /// bounded by its equal split). `usize::MAX` = entry-cap only.
    budget: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone + CacheWeight> ShardedCache<V> {
    /// Creates a cache with `shards` independent lock domains (rounded
    /// up to a power of two, minimum 1) and no byte budget — the
    /// per-shard entry cap is the only bound until
    /// [`set_budget`](Self::set_budget) is called.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(ShardInner::new())).collect(),
            generation: AtomicU64::new(0),
            scope_gens: Mutex::new(HashMap::new()),
            budget: AtomicUsize::new(usize::MAX),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Sets the total tracked-byte budget (split evenly across
    /// shards). Takes effect on the next insertions; it does not
    /// proactively sweep already-cached entries.
    pub fn set_budget(&self, bytes: usize) {
        self.budget.store(bytes.max(1), Ordering::Relaxed);
    }

    /// The configured total byte budget (`usize::MAX` = unbudgeted).
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    fn shard_budget(&self) -> usize {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == usize::MAX {
            usize::MAX
        } else {
            (budget / self.shards.len()).max(1)
        }
    }

    fn shard(&self, key: &str) -> &Shard<V> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Observes the generation a compute is about to run under; pass
    /// the returned stamp to [`insert`](Self::insert) afterwards.
    pub fn begin(&self) -> u64 {
        self.generation()
    }

    /// Observes the global generation **and** the named scope
    /// generations before a scoped compute; pass the stamp to
    /// [`insert_scoped`](Self::insert_scoped) afterwards.
    pub fn begin_scoped<'a>(&self, scopes: impl IntoIterator<Item = &'a str>) -> ScopedStamp {
        let generation = self.generation();
        let gens = self.scope_gens.lock();
        ScopedStamp {
            generation,
            scopes: scopes
                .into_iter()
                .map(|s| (s.to_string(), gens.get(s).copied().unwrap_or(0)))
                .collect(),
        }
    }

    /// Bumps the named scopes, logically evicting every entry stamped
    /// with any of them. Entries stamped only with other scopes stay
    /// live — this is the fine-grained counterpart of
    /// [`invalidate`](Self::invalidate). Eviction is lazy (on lookup,
    /// or stale-first when an insertion goes over budget): scoped
    /// writes are frequent and must not pay a full sweep.
    pub fn invalidate_scopes<'a>(&self, scopes: impl IntoIterator<Item = &'a str>) {
        let mut gens = self.scope_gens.lock();
        for scope in scopes {
            *gens.entry(scope.to_string()).or_insert(0) += 1;
        }
    }

    /// Whether every scope stamp in `scopes` is still current. Assumed
    /// to be called with the entry's shard lock held.
    fn scopes_current(&self, scopes: &[(String, u64)]) -> bool {
        if scopes.is_empty() {
            return true;
        }
        let gens = self.scope_gens.lock();
        scopes
            .iter()
            .all(|(name, observed)| gens.get(name).copied().unwrap_or(0) == *observed)
    }

    /// Bumps the generation, logically evicting every cached entry,
    /// and frees the shard maps eagerly — a long-lived server must
    /// not keep stale bodies alive waiting for their exact keys to be
    /// looked up again. Call after any store mutation.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Looks up a key, counting a hit or miss. Entries from an older
    /// generation — global or any stamped scope — are dropped and
    /// reported as misses; a hit refreshes the entry's LRU position.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock();
        // Read under the shard lock: a racing invalidate + re-insert
        // must not make a freshly stamped entry look stale.
        let current = self.generation();
        let fresh = match shard.map.get(key) {
            Some(e) => e.generation == current && self.scopes_current(&e.scopes),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if fresh {
            let (stored_key, value) = {
                let (k, e) = shard.map.get_key_value(key).expect("checked above");
                (Arc::clone(k), e.value.clone())
            };
            shard.touch(&stored_key);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        } else {
            shard.remove(key);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts a value computed under `observed` (from
    /// [`begin`](Self::begin)). Dropped silently when a mutation
    /// intervened — the result may already be stale.
    pub fn insert(&self, key: impl Into<String>, value: V, observed: u64) {
        self.insert_entry(key.into(), value, observed, Box::from([]));
    }

    /// Inserts a value computed under a [`ScopedStamp`] (from
    /// [`begin_scoped`](Self::begin_scoped)). Dropped silently when
    /// the global generation *or any observed scope* moved while the
    /// value was being computed.
    pub fn insert_scoped(&self, key: impl Into<String>, value: V, stamp: ScopedStamp) {
        self.insert_entry(key.into(), value, stamp.generation, stamp.scopes);
    }

    fn insert_entry(&self, key: String, value: V, observed: u64, scopes: Box<[(String, u64)]>) {
        if observed != self.generation() {
            return;
        }
        let bytes = key.len() + value.weight();
        let key: Arc<str> = Arc::from(key);
        let mut shard = self.shard(&key).lock();
        // Re-check under the shard lock: an invalidation racing the
        // first check must not let a stale value land.
        if observed != self.generation() || !self.scopes_current(&scopes) {
            return;
        }
        shard.remove(&key);
        shard.bytes += bytes;
        shard.map.insert(
            Arc::clone(&key),
            Entry {
                generation: observed,
                scopes,
                value,
                bytes,
                touched: 0,
            },
        );
        shard.touch(&key);
        self.evict_over_bounds(&mut shard, observed);
    }

    /// Brings a shard back under both bounds (entry cap and byte
    /// budget): first drops every **stale** entry (older generation or
    /// bumped scope — already logically evicted, just not yet
    /// collected), then pops **least-recently-used** live entries
    /// until the bounds hold. Both phases are deterministic; the most
    /// recently inserted/touched entry is evicted last, and only if it
    /// alone exceeds the budget.
    fn evict_over_bounds(&self, shard: &mut ShardInner<V>, current: u64) {
        let budget = self.shard_budget();
        let over = |s: &ShardInner<V>| s.map.len() > MAX_SHARD_ENTRIES || s.bytes > budget;
        if !over(shard) {
            return;
        }
        // Stale-first: reclaim logically dead entries before touching
        // any live one.
        let stale: Vec<Arc<str>> = shard
            .map
            .iter()
            .filter(|(_, e)| e.generation != current || !self.scopes_current(&e.scopes))
            .map(|(k, _)| Arc::clone(k))
            .collect();
        for key in stale {
            shard.remove(&key);
        }
        // Then strict LRU: pop recency records oldest-first, skipping
        // superseded ones.
        while over(shard) {
            match shard.order.pop_front() {
                Some((tick, key)) => {
                    if shard.map.get(&key).is_some_and(|e| e.touched == tick) {
                        shard.remove(&key);
                    }
                }
                None => break, // map must be empty too
            }
        }
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entries across all shards (stale entries not yet evicted
    /// count too).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Tracked bytes across all shards (key bytes + value weights,
    /// stale-but-uncollected entries included).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ShardedCache::new(4);
        assert!(cache.get("a").is_none());
        let g = cache.begin();
        cache.insert("a", arc("1"), g);
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), "a".len() + "1".len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn generation_invalidates_all_entries() {
        let cache = ShardedCache::new(1);
        let g = cache.begin();
        cache.insert("a", arc("1"), g);
        cache.insert("b", arc("2"), g);
        cache.invalidate();
        assert!(cache.get("a").is_none(), "stale entries must miss");
        // Invalidation frees the shard maps eagerly.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        let g2 = cache.begin();
        assert_eq!(g2, g + 1);
        cache.insert("a", arc("3"), g2);
        assert_eq!(cache.get("a").as_deref(), Some("3"));
    }

    #[test]
    fn stale_compute_does_not_land() {
        let cache = ShardedCache::new(2);
        let observed = cache.begin();
        // A mutation intervenes while the value is being computed.
        cache.invalidate();
        cache.insert("k", arc("stale"), observed);
        assert!(cache.get("k").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_size_is_bounded() {
        let cache = ShardedCache::new(1);
        let g = cache.begin();
        for i in 0..(MAX_SHARD_ENTRIES * 3) {
            cache.insert(format!("k{i}"), arc("v"), g);
        }
        assert!(cache.len() <= MAX_SHARD_ENTRIES, "cache must stay bounded");
        // Re-inserting an existing key does not evict anything.
        let before = cache.len();
        cache.insert("k0", arc("v2"), g);
        assert!(cache.len() <= before.max(MAX_SHARD_ENTRIES));
    }

    #[test]
    fn byte_budget_is_enforced() {
        let cache = ShardedCache::new(1);
        // Each entry: 3-byte key + 10-byte value = 13 tracked bytes.
        cache.set_budget(5 * 13);
        let g = cache.begin();
        for i in 10..40 {
            cache.insert(format!("k{i}"), arc("0123456789"), g);
        }
        assert!(
            cache.bytes() <= cache.budget(),
            "tracked bytes {} must stay within the budget {}",
            cache.bytes(),
            cache.budget()
        );
        assert_eq!(cache.len(), 5);
        // The survivors are exactly the five most recent insertions.
        for i in 35..40 {
            assert!(cache.get(&format!("k{i}")).is_some(), "k{i} must survive");
        }
    }

    /// The PR-7 regression pin: the eviction victim is chosen by
    /// recency, not by `HashMap` iteration order — a hot (recently
    /// read) entry survives insertion pressure that evicts a colder
    /// sibling inserted after it.
    #[test]
    fn eviction_is_lru_not_arbitrary() {
        let cache = ShardedCache::new(1);
        cache.set_budget(3 * 12); // three 12-byte entries fit
        let g = cache.begin();
        cache.insert("aa", arc("0123456789"), g);
        cache.insert("bb", arc("0123456789"), g);
        cache.insert("cc", arc("0123456789"), g);
        // Touch "aa": it is now the most recently used, "bb" the LRU.
        assert!(cache.get("aa").is_some());
        cache.insert("dd", arc("0123456789"), g);
        assert!(cache.get("bb").is_none(), "LRU victim must be bb");
        assert!(cache.get("aa").is_some(), "recently read entry survives");
        assert!(cache.get("cc").is_some());
        assert!(cache.get("dd").is_some());
    }

    /// Stale entries are reclaimed before any live entry is evicted,
    /// even when the stale entry is the most recently used.
    #[test]
    fn eviction_prefers_stale_over_live() {
        let cache = ShardedCache::new(1);
        cache.set_budget(3 * 12);
        let g = cache.begin();
        cache.insert("aa", arc("0123456789"), g);
        let stamp = cache.begin_scoped(["exp:dead"]);
        cache.insert_scoped("bb", arc("0123456789"), stamp);
        cache.insert("cc", arc("0123456789"), g);
        // "bb" is logically dead but the most recently *inserted live
        // touch* is "cc"; make "bb" also the most recently used so the
        // stale-first rule (not recency) must save the live entries.
        assert!(cache.get("bb").is_some());
        cache.invalidate_scopes(["exp:dead"]);
        cache.insert("dd", arc("0123456789"), g);
        assert!(cache.get("aa").is_some(), "live LRU survives: stale first");
        assert!(cache.get("cc").is_some());
        assert!(cache.get("dd").is_some());
        assert!(cache.get("bb").is_none());
    }

    #[test]
    fn oversized_value_does_not_pin_the_cache() {
        let cache = ShardedCache::new(1);
        cache.set_budget(16);
        let g = cache.begin();
        cache.insert("k", Arc::<str>::from("x".repeat(64).as_str()), g);
        assert!(
            cache.bytes() <= 16,
            "an entry larger than the whole budget must not stick"
        );
    }

    #[test]
    fn generic_value_tier_shares_the_invalidation_rule() {
        // The response-byte tier the server stacks on top: full
        // serialized responses plus a body offset.
        let cache: ShardedCache<(Arc<[u8]>, usize)> = ShardedCache::new(2);
        let g = cache.begin();
        let bytes: Arc<[u8]> = Arc::from(b"HTTP/1.1 200 OK\r\n\r\n{}".as_slice());
        cache.insert("k", (Arc::clone(&bytes), 19), g);
        let (hit, body_start) = cache.get("k").expect("fresh entry");
        assert_eq!(&hit[body_start..], b"{}");
        cache.invalidate();
        assert!(cache.get("k").is_none(), "generation bump clears the tier");
    }

    #[test]
    fn scoped_invalidation_only_evicts_the_named_scopes() {
        let cache = ShardedCache::new(4);
        let s1 = cache.begin_scoped(["exp:run-1"]);
        cache.insert_scoped("metrics?run-1", arc("m1"), s1);
        let s2 = cache.begin_scoped(["exp:run-2"]);
        cache.insert_scoped("metrics?run-2", arc("m2"), s2);
        let listing = cache.begin_scoped(["sys:experiments"]);
        cache.insert_scoped("experiments", arc("le"), listing);
        let s3 = cache.begin_scoped(["sys:datasets"]);
        cache.insert_scoped("datasets", arc("ds"), s3);

        // Importing/touching run-1 bumps its scope and the experiment
        // listing; run-2's metrics and the dataset listing survive.
        cache.invalidate_scopes(["exp:run-1", "sys:experiments"]);
        assert!(cache.get("metrics?run-1").is_none(), "touched scope evicts");
        assert!(cache.get("experiments").is_none(), "listing changed");
        assert_eq!(cache.get("metrics?run-2").as_deref(), Some("m2"));
        assert_eq!(cache.get("datasets").as_deref(), Some("ds"));
    }

    #[test]
    fn scoped_compute_straddling_a_scope_bump_does_not_land() {
        let cache = ShardedCache::new(2);
        let stamp = cache.begin_scoped(["exp:a"]);
        cache.invalidate_scopes(["exp:a"]);
        cache.insert_scoped("k", arc("stale"), stamp);
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn global_invalidation_still_clears_scoped_entries() {
        let cache = ShardedCache::new(2);
        let stamp = cache.begin_scoped(["exp:a"]);
        cache.insert_scoped("k", arc("v"), stamp);
        cache.invalidate();
        assert!(cache.get("k").is_none());
        assert_eq!(cache.len(), 0, "global invalidation stays eager");
    }

    #[test]
    fn scope_blind_entries_ignore_scope_bumps() {
        let cache = ShardedCache::new(2);
        let g = cache.begin();
        cache.insert("k", arc("v"), g);
        cache.invalidate_scopes(["exp:a", "sys:experiments"]);
        assert_eq!(cache.get("k").as_deref(), Some("v"));
    }

    #[test]
    fn dropped_stale_lookup_releases_its_bytes() {
        let cache = ShardedCache::new(1);
        let stamp = cache.begin_scoped(["exp:a"]);
        cache.insert_scoped("k", arc("0123456789"), stamp);
        let full = cache.bytes();
        assert!(full > 0);
        cache.invalidate_scopes(["exp:a"]);
        assert!(cache.get("k").is_none());
        assert_eq!(cache.bytes(), 0, "lazy eviction must release bytes");
    }

    #[test]
    fn recency_queue_stays_compact_under_repeated_hits() {
        let cache = ShardedCache::new(1);
        let g = cache.begin();
        cache.insert("k", arc("v"), g);
        for _ in 0..10_000 {
            assert!(cache.get("k").is_some());
        }
        let order_len = cache.shards[0].lock().order.len();
        assert!(
            order_len <= 2 + ORDER_SLACK,
            "recency queue must not grow with hit count (len {order_len})"
        );
    }

    #[test]
    fn concurrent_readers_and_invalidation() {
        let cache: Arc<ShardedCache> = Arc::new(ShardedCache::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", i % 10);
                        let g = cache.begin();
                        if cache.get(&key).is_none() {
                            cache.insert(key, Arc::from(format!("v{g}").as_str()), g);
                        }
                        if t == 0 && i % 50 == 0 {
                            cache.invalidate();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every surviving entry must be stamped with the final
        // generation once re-read.
        let g = cache.generation();
        for i in 0..10 {
            if let Some(v) = cache.get(&format!("k{i}")) {
                assert_eq!(v.as_ref(), format!("v{g}"));
            }
        }
    }
}
