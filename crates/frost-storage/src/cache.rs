//! A sharded, generation-stamped concurrent cache for derived
//! artifacts.
//!
//! The long-lived `frostd` server memoizes rendered results — diagram
//! series, Venn tables, comparison views — keyed by the canonical
//! request. The cache is generic over its value type so the server can
//! stack *tiers* with one invalidation rule: a first tier of rendered
//! JSON bodies (`Arc<str>`, the default) and a second tier of fully
//! serialized HTTP response bytes (`Arc<[u8]>` behind a server-side
//! wrapper), both stamped with the same store generation. Two
//! properties matter for a shared deployment (§5.2 allows both local
//! and hosted instances):
//!
//! * **Sharded locking** — keys hash onto independent mutex-guarded
//!   shards, so concurrent readers of different requests never contend
//!   on one lock.
//! * **Generation stamping** — every entry records the store
//!   generation it was computed under. A mutation bumps the generation
//!   ([`ShardedCache::invalidate`]), which logically evicts every
//!   older entry at once: a stale entry is treated as a miss and
//!   dropped lazily on the next lookup. A compute that *straddles* a
//!   mutation is also safe, because the writer stamps the entry with
//!   the generation it observed **before** computing
//!   ([`ShardedCache::begin`]) and [`ShardedCache::insert`] refuses
//!   the entry when that stamp is no longer current.
//! * **Scoped invalidation** — with a live write path, bumping the
//!   global generation on every import would evict *everything* a
//!   busy server has cached, even entries that never read the
//!   imported experiment. Entries inserted via
//!   [`ShardedCache::begin_scoped`] / [`ShardedCache::insert_scoped`]
//!   are additionally stamped with the named *scopes* they read (an
//!   experiment, a dataset, the experiment listing). A mutation calls
//!   [`ShardedCache::invalidate_scopes`] with only the scopes it
//!   touched; entries stamped with other scopes stay live. The global
//!   generation remains the big hammer for store-replacement events.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Entries per shard before insertion evicts (stale first, then an
/// arbitrary victim).
const MAX_SHARD_ENTRIES: usize = 512;

struct Entry<V> {
    generation: u64,
    /// The scope generations observed at compute time; the entry is
    /// stale as soon as any listed scope has been bumped past its
    /// recorded value. Empty for scope-blind entries.
    scopes: Box<[(String, u64)]>,
    value: V,
}

/// One lock domain: a mutex-guarded map of generation-stamped entries.
type Shard<V> = Mutex<HashMap<String, Entry<V>>>;

/// The stamp for a scoped compute: the global generation plus every
/// scope generation observed **before** the compute started. Produced
/// by [`ShardedCache::begin_scoped`], consumed by
/// [`ShardedCache::insert_scoped`].
#[derive(Debug, Clone)]
pub struct ScopedStamp {
    generation: u64,
    scopes: Box<[(String, u64)]>,
}

/// The cache, generic over the cached value (cheaply cloneable —
/// tiers store `Arc`s). See the [module docs](self) for the
/// invalidation rule.
pub struct ShardedCache<V: Clone = Arc<str>> {
    shards: Box<[Shard<V>]>,
    /// Current store generation; entries stamped with an older value
    /// are stale.
    generation: AtomicU64,
    /// Per-scope generations (absent scope = 0). Lock order: a shard
    /// lock may be held when taking this lock, never the reverse.
    scope_gens: Mutex<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache with `shards` independent lock domains (rounded
    /// up to a power of two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            generation: AtomicU64::new(0),
            scope_gens: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Shard<V> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Observes the generation a compute is about to run under; pass
    /// the returned stamp to [`insert`](Self::insert) afterwards.
    pub fn begin(&self) -> u64 {
        self.generation()
    }

    /// Observes the global generation **and** the named scope
    /// generations before a scoped compute; pass the stamp to
    /// [`insert_scoped`](Self::insert_scoped) afterwards.
    pub fn begin_scoped<'a>(&self, scopes: impl IntoIterator<Item = &'a str>) -> ScopedStamp {
        let generation = self.generation();
        let gens = self.scope_gens.lock();
        ScopedStamp {
            generation,
            scopes: scopes
                .into_iter()
                .map(|s| (s.to_string(), gens.get(s).copied().unwrap_or(0)))
                .collect(),
        }
    }

    /// Bumps the named scopes, logically evicting every entry stamped
    /// with any of them. Entries stamped only with other scopes stay
    /// live — this is the fine-grained counterpart of
    /// [`invalidate`](Self::invalidate). Eviction is lazy (on lookup):
    /// scoped writes are frequent and must not pay a full sweep.
    pub fn invalidate_scopes<'a>(&self, scopes: impl IntoIterator<Item = &'a str>) {
        let mut gens = self.scope_gens.lock();
        for scope in scopes {
            *gens.entry(scope.to_string()).or_insert(0) += 1;
        }
    }

    /// Whether every scope stamp in `scopes` is still current. Assumed
    /// to be called with the entry's shard lock held.
    fn scopes_current(&self, scopes: &[(String, u64)]) -> bool {
        if scopes.is_empty() {
            return true;
        }
        let gens = self.scope_gens.lock();
        scopes
            .iter()
            .all(|(name, observed)| gens.get(name).copied().unwrap_or(0) == *observed)
    }

    /// Bumps the generation, logically evicting every cached entry,
    /// and frees the shard maps eagerly — a long-lived server must
    /// not keep stale bodies alive waiting for their exact keys to be
    /// looked up again. Call after any store mutation.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Looks up a key, counting a hit or miss. Entries from an older
    /// generation — global or any stamped scope — are dropped and
    /// reported as misses.
    pub fn get(&self, key: &str) -> Option<V> {
        let mut shard = self.shard(key).lock();
        // Read under the shard lock: a racing invalidate + re-insert
        // must not make a freshly stamped entry look stale.
        let current = self.generation();
        let fresh = match shard.get(key) {
            Some(e) => e.generation == current && self.scopes_current(&e.scopes),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if fresh {
            let value = shard[key].value.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        } else {
            shard.remove(key);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts a value computed under `observed` (from
    /// [`begin`](Self::begin)). Dropped silently when a mutation
    /// intervened — the result may already be stale.
    pub fn insert(&self, key: impl Into<String>, value: V, observed: u64) {
        self.insert_entry(key.into(), value, observed, Box::from([]));
    }

    /// Inserts a value computed under a [`ScopedStamp`] (from
    /// [`begin_scoped`](Self::begin_scoped)). Dropped silently when
    /// the global generation *or any observed scope* moved while the
    /// value was being computed.
    pub fn insert_scoped(&self, key: impl Into<String>, value: V, stamp: ScopedStamp) {
        self.insert_entry(key.into(), value, stamp.generation, stamp.scopes);
    }

    fn insert_entry(&self, key: String, value: V, observed: u64, scopes: Box<[(String, u64)]>) {
        if observed != self.generation() {
            return;
        }
        let mut shard = self.shard(&key).lock();
        // Re-check under the shard lock: an invalidation racing the
        // first check must not let a stale value land.
        if observed != self.generation() || !self.scopes_current(&scopes) {
            return;
        }
        // Bound each shard: distinct request shapes are unbounded
        // (e.g. every `samples` value is its own key), so a full
        // shard first drops stale entries, then an arbitrary victim
        // — memory stays O(shards · MAX_SHARD_ENTRIES).
        if shard.len() >= MAX_SHARD_ENTRIES && !shard.contains_key(&key) {
            shard.retain(|_, e| e.generation == observed && self.scopes_current(&e.scopes));
            if shard.len() >= MAX_SHARD_ENTRIES {
                if let Some(evict) = shard.keys().next().cloned() {
                    shard.remove(&evict);
                }
            }
        }
        shard.insert(
            key,
            Entry {
                generation: observed,
                scopes,
                value,
            },
        );
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entries across all shards (stale entries not yet evicted
    /// count too).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ShardedCache::new(4);
        assert!(cache.get("a").is_none());
        let g = cache.begin();
        cache.insert("a", arc("1"), g);
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn generation_invalidates_all_entries() {
        let cache = ShardedCache::new(1);
        let g = cache.begin();
        cache.insert("a", arc("1"), g);
        cache.insert("b", arc("2"), g);
        cache.invalidate();
        assert!(cache.get("a").is_none(), "stale entries must miss");
        // Invalidation frees the shard maps eagerly.
        assert_eq!(cache.len(), 0);
        let g2 = cache.begin();
        assert_eq!(g2, g + 1);
        cache.insert("a", arc("3"), g2);
        assert_eq!(cache.get("a").as_deref(), Some("3"));
    }

    #[test]
    fn stale_compute_does_not_land() {
        let cache = ShardedCache::new(2);
        let observed = cache.begin();
        // A mutation intervenes while the value is being computed.
        cache.invalidate();
        cache.insert("k", arc("stale"), observed);
        assert!(cache.get("k").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_size_is_bounded() {
        let cache = ShardedCache::new(1);
        let g = cache.begin();
        for i in 0..(MAX_SHARD_ENTRIES * 3) {
            cache.insert(format!("k{i}"), arc("v"), g);
        }
        assert!(cache.len() <= MAX_SHARD_ENTRIES, "cache must stay bounded");
        // Re-inserting an existing key does not evict anything.
        let before = cache.len();
        cache.insert("k0", arc("v2"), g);
        assert!(cache.len() <= before.max(MAX_SHARD_ENTRIES));
    }

    #[test]
    fn generic_value_tier_shares_the_invalidation_rule() {
        // The response-byte tier the server stacks on top: full
        // serialized responses plus a body offset.
        let cache: ShardedCache<(Arc<[u8]>, usize)> = ShardedCache::new(2);
        let g = cache.begin();
        let bytes: Arc<[u8]> = Arc::from(b"HTTP/1.1 200 OK\r\n\r\n{}".as_slice());
        cache.insert("k", (Arc::clone(&bytes), 19), g);
        let (hit, body_start) = cache.get("k").expect("fresh entry");
        assert_eq!(&hit[body_start..], b"{}");
        cache.invalidate();
        assert!(cache.get("k").is_none(), "generation bump clears the tier");
    }

    #[test]
    fn scoped_invalidation_only_evicts_the_named_scopes() {
        let cache = ShardedCache::new(4);
        let s1 = cache.begin_scoped(["exp:run-1"]);
        cache.insert_scoped("metrics?run-1", arc("m1"), s1);
        let s2 = cache.begin_scoped(["exp:run-2"]);
        cache.insert_scoped("metrics?run-2", arc("m2"), s2);
        let listing = cache.begin_scoped(["sys:experiments"]);
        cache.insert_scoped("experiments", arc("le"), listing);
        let s3 = cache.begin_scoped(["sys:datasets"]);
        cache.insert_scoped("datasets", arc("ds"), s3);

        // Importing/touching run-1 bumps its scope and the experiment
        // listing; run-2's metrics and the dataset listing survive.
        cache.invalidate_scopes(["exp:run-1", "sys:experiments"]);
        assert!(cache.get("metrics?run-1").is_none(), "touched scope evicts");
        assert!(cache.get("experiments").is_none(), "listing changed");
        assert_eq!(cache.get("metrics?run-2").as_deref(), Some("m2"));
        assert_eq!(cache.get("datasets").as_deref(), Some("ds"));
    }

    #[test]
    fn scoped_compute_straddling_a_scope_bump_does_not_land() {
        let cache = ShardedCache::new(2);
        let stamp = cache.begin_scoped(["exp:a"]);
        cache.invalidate_scopes(["exp:a"]);
        cache.insert_scoped("k", arc("stale"), stamp);
        assert!(cache.get("k").is_none());
    }

    #[test]
    fn global_invalidation_still_clears_scoped_entries() {
        let cache = ShardedCache::new(2);
        let stamp = cache.begin_scoped(["exp:a"]);
        cache.insert_scoped("k", arc("v"), stamp);
        cache.invalidate();
        assert!(cache.get("k").is_none());
        assert_eq!(cache.len(), 0, "global invalidation stays eager");
    }

    #[test]
    fn scope_blind_entries_ignore_scope_bumps() {
        let cache = ShardedCache::new(2);
        let g = cache.begin();
        cache.insert("k", arc("v"), g);
        cache.invalidate_scopes(["exp:a", "sys:experiments"]);
        assert_eq!(cache.get("k").as_deref(), Some("v"));
    }

    #[test]
    fn concurrent_readers_and_invalidation() {
        let cache: Arc<ShardedCache> = Arc::new(ShardedCache::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", i % 10);
                        let g = cache.begin();
                        if cache.get(&key).is_none() {
                            cache.insert(key, Arc::from(format!("v{g}").as_str()), g);
                        }
                        if t == 0 && i % 50 == 0 {
                            cache.invalidate();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Every surviving entry must be stamped with the final
        // generation once re-read.
        let g = cache.generation();
        for i in 0..10 {
            if let Some(v) = cache.get(&format!("k{i}")) {
                assert_eq!(v.as_ref(), format!("v{g}"));
            }
        }
    }
}
