//! Structural error analysis (the paper's §7 outlook, implemented):
//! categorize a matching solution's errors (typos, reorders,
//! abbreviations, missing values), measure how fragile its identity
//! links are (bridge ratio), and score how suitable a benchmark is for
//! a use case including the solution's *behavioral* similarity.
//!
//! ```text
//! cargo run --release --example error_study
//! ```

use frost::core::explore::error_categories::{ErrorCategory, ErrorProfile};
use frost::core::explore::judge_experiment;
use frost::core::profiling::{
    decision_matrix, matcher_behavior_similarity, suitability_score, FeatureWeights,
};
use frost::core::quality::{bridge_ratio, link_redundancy};
use frost::datagen::generator::{generate, GeneratorConfig};
use frost::matchers::blocking::TokenBlocking;
use frost::matchers::decision::threshold::WeightedAverage;
use frost::matchers::features::Comparator;
use frost::matchers::pipeline::{ClusteringMethod, MatchingPipeline};
use frost::matchers::similarity::Measure;

fn run_matcher(
    ds: &frost::core::dataset::Dataset,
    threshold: f64,
) -> frost::matchers::pipeline::PipelineRun {
    MatchingPipeline {
        name: format!("study@{threshold}"),
        preparer: None,
        blocker: Box::new(TokenBlocking {
            attributes: vec!["name".into(), "description".into()],
            max_token_frequency: 80,
        }),
        model: Box::new(WeightedAverage::uniform(
            [
                Comparator::new("name", Measure::Exact),
                Comparator::new("description", Measure::TokenJaccard),
            ],
            threshold,
        )),
        clustering: ClusteringMethod::TransitiveClosure,
    }
    .run(ds)
}

fn main() {
    let use_case = generate(&GeneratorConfig::small("use-case", 400, 1));
    let benchmark_close = generate(&GeneratorConfig::small("bench-close", 500, 2));
    let mut far_cfg = GeneratorConfig::small("bench-far", 500, 3);
    far_cfg.sparsity = 0.5;
    far_cfg.attributes[1].min_words = 15;
    far_cfg.attributes[1].max_words = 25;
    let benchmark_far = generate(&far_cfg);

    // A matcher that relies on exact name equality — by construction
    // weak against typos.
    let run = run_matcher(&use_case.dataset, 0.6);
    let judged = judge_experiment(&run.experiment, &use_case.truth);

    // §7 outlook: categorize the errors.
    let mut all_judged = judged.clone();
    // Add the false negatives (truth pairs the matcher missed) so the
    // profile covers both error kinds.
    let found = run.experiment.pair_set();
    for p in use_case.truth.intra_pairs() {
        if !found.contains(&p) {
            all_judged.push(frost::core::explore::JudgedPair {
                pair: p,
                similarity: None,
                predicted_match: false,
                actual_match: true,
            });
        }
    }
    let profile = ErrorProfile::from_judged(&use_case.dataset, &all_judged);
    println!("error profile of the exact-name matcher:");
    for cat in ErrorCategory::ALL {
        let total = profile.total(cat);
        if total > 0 {
            println!("  {cat:<15} {total}");
        }
    }
    if let Some(dominant) = profile.dominant() {
        println!("dominant structural weakness: {dominant}");
    }

    // Link fragility of the result.
    println!(
        "\nlink redundancy {:.3}, bridge ratio {:.3}",
        link_redundancy(use_case.dataset.len(), &run.experiment),
        bridge_ratio(use_case.dataset.len(), &run.experiment),
    );

    // Suitability: profile distance + behavioral similarity of the same
    // matcher on each candidate benchmark.
    let rows = decision_matrix(
        &use_case.dataset,
        &[
            (&benchmark_close.dataset, Some(&benchmark_close.truth)),
            (&benchmark_far.dataset, Some(&benchmark_far.truth)),
        ],
        FeatureWeights::default(),
    );
    println!("\nbenchmark suitability (profile × behavior):");
    for row in &rows {
        let bench = if row.candidate == "bench-close" {
            &benchmark_close
        } else {
            &benchmark_far
        };
        let bench_run = run_matcher(&bench.dataset, 0.6);
        let behavior = matcher_behavior_similarity(
            use_case.dataset.len(),
            &run.experiment,
            bench.dataset.len(),
            &bench_run.experiment,
        );
        let score = suitability_score(row, Some(behavior));
        println!(
            "  {:<12} profile-distance {:.3}, behavior-similarity {:.3} → suitability {:.3}",
            row.candidate, row.score, behavior, score
        );
    }
    assert_eq!(
        rows[0].candidate, "bench-close",
        "the similar benchmark should rank first"
    );
}
