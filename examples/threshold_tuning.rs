//! Exploration deep dive: threshold sweeps (§4.5.1), pair-selection
//! strategies (§4.2), interestingness sorting (§4.3) and error analysis
//! (§4.4) on one scored matching result.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use frost::core::diagram::{DiagramEngine, MetricDiagram};
use frost::core::explore::error_analysis::nearest_correct_pair;
use frost::core::explore::selection::{
    around_threshold, misclassification_ratio_above, misclassified_outliers, percentile_partitions,
    SamplingStrategy,
};
use frost::core::explore::sorting::ColumnEntropy;
use frost::core::explore::{judge_candidates, JudgedPair};
use frost::core::metrics::pair::PairMetric;
use frost::datagen::generator::{generate, GeneratorConfig};
use frost::matchers::blocking::{Blocker, FullPairs};
use frost::matchers::decision::threshold::WeightedAverage;
use frost::matchers::decision::DecisionModel;
use frost::matchers::features::Comparator;
use frost::matchers::similarity::Measure;

fn main() {
    let generated = generate(&GeneratorConfig::small("tuning-demo", 300, 42));
    let ds = &generated.dataset;
    let truth = &generated.truth;

    // Score every pair with a weighted-average matcher.
    let model = WeightedAverage::new(
        [
            (Comparator::new("name", Measure::JaroWinkler), 2.0),
            (Comparator::new("description", Measure::TokenJaccard), 1.0),
            (Comparator::new("category", Measure::Exact), 0.5),
        ],
        0.75,
    );
    let scored: Vec<(frost::core::dataset::RecordPair, f64)> = FullPairs
        .candidates(ds)
        .into_iter()
        .map(|p| (p, model.score(ds, p)))
        .collect();

    // §4.5.1 — the metric/metric diagram across thresholds.
    let experiment = frost::core::dataset::Experiment::new(
        "sweep",
        scored
            .iter()
            .map(|&(p, s)| frost::core::dataset::ScoredPair::scored(p, s)),
    );
    let (best_t, best_f1) = MetricDiagram::best_threshold(
        DiagramEngine::Optimized,
        PairMetric::F1,
        ds.len(),
        truth,
        &experiment,
        40,
    );
    println!(
        "f1-optimal threshold: {best_t:.3} (f1 {best_f1:.3}); configured: {}",
        model.threshold()
    );

    // Judge all candidates at the configured threshold.
    let judged: Vec<JudgedPair> = judge_candidates(&scored, model.threshold(), truth);
    let errors = judged.iter().filter(|p| !p.correct()).count();
    println!("{} candidates judged, {errors} misclassified", judged.len());

    // §4.2.1 — border cases around the threshold, proportioned by where
    // the errors sit.
    let ratio = misclassification_ratio_above(&judged, model.threshold());
    println!("\nfraction of errors above the threshold: {ratio:.2}");
    println!("pairs closest to the threshold:");
    for p in around_threshold(&judged, model.threshold(), 6) {
        println!(
            "  [{}] sim {:.3}  {} / {}",
            p.quadrant(),
            p.similarity.unwrap(),
            ds.value(p.pair.lo(), "name").unwrap_or("∅"),
            ds.value(p.pair.hi(), "name").unwrap_or("∅"),
        );
    }

    // §4.2.2 — confident mistakes.
    println!("\nmisclassified outliers (furthest from the threshold):");
    for p in misclassified_outliers(&judged, model.threshold(), 3) {
        println!(
            "  [{}] sim {:.3}  {} / {}",
            p.quadrant(),
            p.similarity.unwrap(),
            ds.value(p.pair.lo(), "name").unwrap_or("∅"),
            ds.value(p.pair.hi(), "name").unwrap_or("∅"),
        );
    }

    // §4.2.3 — percentile partitions with class-based representatives.
    println!("\nscore percentiles (5 partitions, 2 representatives each):");
    for part in percentile_partitions(&judged, 5, 2, SamplingStrategy::ClassBased { seed: 1 }) {
        println!(
            "  partition {} [{:.3}, {:.3}] errors {} {}",
            part.index,
            part.score_range.0,
            part.score_range.1,
            part.matrix.errors(),
            if part.is_confident() {
                "(confident)"
            } else {
                ""
            },
        );
    }

    // §4.3.2 — entropy ordering: erroneous pairs with many rare tokens
    // first (they *should* have been easy).
    let entropy = ColumnEntropy::from_dataset(ds);
    let mut wrong: Vec<JudgedPair> = judged.iter().filter(|p| !p.correct()).copied().collect();
    entropy.sort_by_entropy(ds, &mut wrong);
    if let Some(top) = wrong.first() {
        println!(
            "\nhighest-entropy misclassified pair: {} / {} (entropy {:.2})",
            ds.value(top.pair.lo(), "name").unwrap_or("∅"),
            ds.value(top.pair.hi(), "name").unwrap_or("∅"),
            entropy.pair_entropy(ds, top.pair),
        );

        // §4.4 — explain it through the nearest correctly classified pair.
        let correct_pairs: Vec<frost::core::dataset::RecordPair> = judged
            .iter()
            .filter(|p| p.correct() && p.predicted_match)
            .map(|p| p.pair)
            .collect();
        let sim = |a: frost::core::dataset::RecordId, b: frost::core::dataset::RecordId| {
            model.score(ds, frost::core::dataset::RecordPair::new(a, b))
        };
        if let Some(nearest) = nearest_correct_pair(top.pair, &correct_pairs, sim, 2.0) {
            println!(
                "nearest correctly classified pair (score {:.3}): {} / {}",
                nearest.score,
                ds.value(nearest.pair.lo(), "name").unwrap_or("∅"),
                ds.value(nearest.pair.hi(), "name").unwrap_or("∅"),
            );
        }
    }
}
