//! Quickstart: import a dataset and two matching results, evaluate them
//! against a gold standard, and explore where they disagree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use frost::core::clustering::Clustering;
use frost::core::diagram::{DiagramEngine, MetricDiagram};
use frost::core::explore::setops::SetExpression;
use frost::core::metrics::pair::PairMetric;
use frost::core::metrics::ConfusionMatrix;
use frost::storage::api::{handle, Request, Response};
use frost::storage::import::{import_experiment, import_gold_pairs, DatasetImporter};
use frost::storage::BenchmarkStore;

fn main() {
    // 1. Import a small customer dataset from CSV. Frost assigns dense
    //    numeric ids at import time (Snowman's §5.3 optimization).
    let csv = "\
id,name,city
c1,Anna Schmidt,Berlin
c2,Anna Schmit,Berlin
c3,Bert Weber,Potsdam
c4,B. Weber,Potsdam
c5,Carla Diaz,Hamburg
c6,Karla Diaz,Hamburg
c7,Dieter Braun,Munich
";
    let dataset = DatasetImporter::standard()
        .import("customers", csv)
        .unwrap();

    // 2. Import the gold standard as a pair list (§3.1.1).
    let truth: Clustering = import_gold_pairs(
        &dataset,
        "id1,id2\nc1,c2\nc3,c4\nc5,c6\n",
        frost::core::dataset::CsvOptions::comma(),
    )
    .unwrap();

    // 3. Import two matching results (Frost never runs matchers itself;
    //    it evaluates their output).
    let run1 = import_experiment(
        "run-1",
        &dataset,
        "id1,id2,similarity\nc1,c2,0.96\nc3,c4,0.71\nc1,c5,0.55\n",
        frost::core::dataset::CsvOptions::comma(),
    )
    .unwrap();
    let run2 = import_experiment(
        "run-2",
        &dataset,
        "id1,id2,similarity\nc1,c2,0.93\nc5,c6,0.88\n",
        frost::core::dataset::CsvOptions::comma(),
    )
    .unwrap();

    // 4. Put everything into a benchmark store and evaluate through the
    //    API facade (everything the UI can do, the API can do).
    let mut store = BenchmarkStore::new();
    store.add_dataset(dataset.clone()).unwrap();
    store.set_gold_standard("customers", truth.clone()).unwrap();
    store
        .add_experiment("customers", run1.clone(), None)
        .unwrap();
    store
        .add_experiment("customers", run2.clone(), None)
        .unwrap();

    for name in ["run-1", "run-2"] {
        let Response::Metrics(metrics) = handle(
            &store,
            Request::GetMetrics {
                experiment: name.into(),
            },
        )
        .unwrap() else {
            unreachable!()
        };
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).unwrap().1;
        println!(
            "{name}: precision {:.2}, recall {:.2}, f1 {:.2}",
            get("precision"),
            get("recall"),
            get("f1")
        );
    }

    // 5. Where do the runs disagree? Ground-truth matches run-1 found
    //    that run-2 missed (the Figure 1 exploration).
    let universe = vec![
        run1.pair_set(),
        run2.pair_set(),
        truth.intra_pairs().collect(),
    ];
    let found_only_by_1 = SetExpression::set(2)
        .intersection(SetExpression::set(0))
        .difference(SetExpression::set(1))
        .evaluate(&universe);
    println!("\ntrue matches run-1 found and run-2 did not:");
    for pair in &found_only_by_1 {
        println!(
            "  {} / {}",
            dataset.value(pair.lo(), "name").unwrap_or("?"),
            dataset.value(pair.hi(), "name").unwrap_or("?"),
        );
    }

    // 6. Sweep run-1's similarity threshold (§4.5.1) to find the best f1.
    let points = MetricDiagram::precision_recall().compute(
        DiagramEngine::Optimized,
        dataset.len(),
        &truth,
        &run1,
        4,
    );
    println!("\nrun-1 precision/recall sweep:");
    for (t, recall, precision) in points {
        println!("  threshold {t:>5.2}: recall {recall:.2}, precision {precision:.2}");
    }
    let (best_t, best_f1) = MetricDiagram::best_threshold(
        DiagramEngine::Optimized,
        PairMetric::F1,
        dataset.len(),
        &truth,
        &run1,
        4,
    );
    println!("best f1 {best_f1:.2} at threshold {best_t:.2}");

    // Sanity: direct confusion matrix of run-1.
    let matrix = ConfusionMatrix::from_experiment(&run1, &truth, dataset.len());
    assert_eq!(matrix.true_positives, 2);
    assert_eq!(matrix.false_positives, 1);
    assert_eq!(matrix.false_negatives, 1);
}
