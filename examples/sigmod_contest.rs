//! The §5.4 workflow end to end: run several real matching pipelines on
//! a SIGMOD-contest-like dataset, load their results into the store,
//! compare quality, find the optimal thresholds, and drill into the
//! pairs (almost) everyone missed.
//!
//! ```text
//! cargo run --release --example sigmod_contest
//! ```

use frost::core::dataset::Experiment;
use frost::core::explore::setops::hard_pairs;
use frost::core::explore::{attribute_stats, judge_experiment};
use frost::core::metrics::pair;
use frost::core::metrics::ConfusionMatrix;
use frost::datagen::presets::altosight_x4;
use frost::matchers::blocking::TokenBlocking;
use frost::matchers::decision::rules::{Condition, Rule, RuleSet};
use frost::matchers::decision::threshold::WeightedAverage;
use frost::matchers::features::Comparator;
use frost::matchers::pipeline::{ClusteringMethod, MatchingPipeline};
use frost::matchers::prepare::Preparer;
use frost::matchers::similarity::Measure;
use frost::storage::BenchmarkStore;

fn main() {
    // A contest-like product dataset with large duplicate clusters.
    let generated = frost::datagen::generator::generate(&altosight_x4(0.4).config);
    let n = generated.dataset.len();
    println!(
        "dataset: {} records, {} true duplicate pairs",
        n,
        generated.truth.pair_count()
    );

    let blocker = || TokenBlocking {
        attributes: vec!["name".into(), "brand".into()],
        max_token_frequency: 80,
    };

    // Three matching solutions, echoing the contest mix: one rule-based,
    // one similarity/threshold ("ML-style" scores), one hybrid.
    let pipelines = vec![
        MatchingPipeline {
            name: "rule-based".into(),
            preparer: Some(Preparer::standard()),
            blocker: Box::new(blocker()),
            model: Box::new(RuleSet::new(
                [
                    Rule::new(
                        "very similar name",
                        [Condition::SimilarityAtLeast {
                            attribute: "name".into(),
                            measure: Measure::TokenJaccard,
                            min: 0.55,
                        }],
                        3.0,
                    ),
                    Rule::new(
                        "same brand",
                        [Condition::Equal {
                            attribute: "brand".into(),
                        }],
                        1.0,
                    ),
                ],
                0.7,
            )),
            clustering: ClusteringMethod::TransitiveClosure,
        },
        MatchingPipeline {
            name: "ml-style".into(),
            preparer: Some(Preparer::standard()),
            blocker: Box::new(blocker()),
            model: Box::new(WeightedAverage::new(
                [
                    (Comparator::new("name", Measure::TokenJaccard), 3.0),
                    (Comparator::new("name", Measure::TokenOverlap), 1.0),
                    (Comparator::new("brand", Measure::JaroWinkler), 1.0),
                ],
                0.62,
            )),
            clustering: ClusteringMethod::TransitiveClosure,
        },
        MatchingPipeline {
            name: "hybrid".into(),
            preparer: Some(Preparer::standard()),
            blocker: Box::new(blocker()),
            model: Box::new(WeightedAverage::new(
                [
                    (Comparator::new("name", Measure::MongeElkan), 2.0),
                    (Comparator::new("size", Measure::Exact), 1.0),
                ],
                0.75,
            )),
            clustering: ClusteringMethod::Center,
        },
    ];

    let mut store = BenchmarkStore::new();
    store.add_dataset(generated.dataset.clone()).unwrap();
    store
        .set_gold_standard(generated.dataset.name(), generated.truth.clone())
        .unwrap();

    let mut experiments: Vec<Experiment> = Vec::new();
    println!("\nN-Metrics view (pair completeness of blocking shown too):");
    for pipeline in &pipelines {
        let run = pipeline.run(&generated.dataset);
        let completeness =
            frost::matchers::blocking::pair_completeness(&run.candidates, &generated.truth);
        let matrix = store
            .add_experiment(generated.dataset.name(), run.experiment.clone(), None)
            .map(|_| store.confusion_matrix(run.experiment.name()).unwrap())
            .unwrap();
        println!(
            "  {:<11} candidates {:>6} (completeness {:.2}) | precision {:.3} recall {:.3} f1 {:.3}",
            run.experiment.name(),
            run.candidates.len(),
            completeness,
            pair::precision(&matrix),
            pair::recall(&matrix),
            pair::f1(&matrix),
        );
        experiments.push(run.experiment);
    }

    // §5.4: duplicates almost nobody finds — and the hardest record.
    let truth_pairs: frost::core::dataset::PairSet = generated.truth.intra_pairs().collect();
    let refs: Vec<&Experiment> = experiments.iter().collect();
    let missed = hard_pairs(&truth_pairs, &refs, 0);
    println!("\ntrue duplicates no solution found: {}", missed.len());
    if let Some(&(pair, _)) = missed.first() {
        println!(
            "  example: {:?} vs {:?}",
            generated.dataset.value(pair.lo(), "name"),
            generated.dataset.value(pair.hi(), "name"),
        );
    }

    // §4.5.2: which attributes' nulls co-occur with the ml-style
    // solution's errors?
    let judged = judge_experiment(&experiments[1], &generated.truth);
    println!("\nnullRatio per attribute (ml-style solution):");
    for ratio in attribute_stats::null_ratio(&generated.dataset, &judged) {
        match ratio.ratio {
            Some(r) => println!(
                "  {:<8} {:>5} null-touched pairs, ratio {r:.3}",
                ratio.attribute, ratio.count
            ),
            None => println!("  {:<8} never null among matches", ratio.attribute),
        }
    }

    // Consensus quality estimation without ground truth (§3.2.3).
    let deviations = frost::core::quality::consensus_deviation(&refs);
    println!("\ndeviation from the majority vote (lower usually means better):");
    for (name, dev) in deviations {
        println!("  {name:<11} {dev}");
    }

    // Verify the winner is genuinely decent.
    let best = experiments
        .iter()
        .map(|e| {
            let m = ConfusionMatrix::from_experiment(e, &generated.truth, n);
            (e.name().to_string(), pair::f1(&m))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!("\nbest solution: {} (f1 {:.3})", best.0, best.1);
    assert!(best.1 > 0.3, "expected a usable matcher, got f1 {}", best.1);
}
