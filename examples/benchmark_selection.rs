//! The practitioner's decision problem (§3.1.3 + §3.3): which benchmark
//! dataset resembles my use-case data, and which matching solution is
//! worth buying once quality *and* soft KPIs are on the table?
//!
//! ```text
//! cargo run --release --example benchmark_selection
//! ```

use frost::core::profiling::{decision_matrix, DatasetProfile, FeatureWeights};
use frost::core::softkpi::{
    CostModel, DeploymentType, Effort, Interface, LifecycleExpenditures, SoftKpiSheet,
    SolutionKpis, Technique,
};
use frost::datagen::generator::generate;
use frost::datagen::presets::{altosight_x4, cora, freedb_cds, sigmod_x3};

fn main() {
    // The practitioner's own (unlabeled) dataset: sparse product data.
    let use_case = generate(&sigmod_x3(0.01).config);
    println!(
        "use-case dataset: {} records, profile:",
        use_case.dataset.len()
    );
    let p = DatasetProfile::without_truth(&use_case.dataset);
    println!(
        "  sparsity {:.3}, textuality {:.2}, {} attributes",
        p.sparsity, p.textuality, p.schema_complexity
    );

    // Candidate public benchmarks.
    let candidates = [
        generate(&altosight_x4(1.0).config),
        generate(&cora(0.5).config),
        generate(&freedb_cds(0.1).config),
    ];
    let with_truth: Vec<_> = candidates
        .iter()
        .map(|g| (&g.dataset, Some(&g.truth)))
        .collect();

    // Weight sparsity heavily — the use case is sparse, and Appendix C
    // shows sparsity mismatch wrecks transfer.
    let weights = FeatureWeights {
        sparsity: 3.0,
        ..FeatureWeights::default()
    };
    println!("\nbenchmark-selection decision matrix (lower score = more similar):");
    for row in decision_matrix(&use_case.dataset, &with_truth, weights) {
        let detail: Vec<String> = row
            .dissimilarities
            .iter()
            .map(|(k, v)| format!("{k} {v:.2}"))
            .collect();
        println!(
            "  {:<14} score {:.3}  ({})",
            row.candidate,
            row.score,
            detail.join(", ")
        );
    }

    // Soft-KPI comparison of three hypothetical solutions (§3.3).
    let cost_model = CostModel {
        base_hourly_rate: 80.0,
        expertise_premium: 1.5,
    };
    let mut sheet = SoftKpiSheet::new();
    sheet.add_solution(
        SolutionKpis {
            name: "open-source-rules".into(),
            lifecycle: LifecycleExpenditures {
                general_costs: 0.0,
                installation: Effort::new(16.0, 40),
                domain_configuration: Effort::new(60.0, 70),
                technical_configuration: Effort::new(24.0, 60),
            },
            deployment: vec![DeploymentType::OnPremise],
            interfaces: vec![Interface::Cli],
            techniques: vec![Technique::RuleBased],
        },
        &cost_model,
    );
    sheet.add_solution(
        SolutionKpis {
            name: "commercial-ml".into(),
            lifecycle: LifecycleExpenditures {
                general_costs: 25_000.0,
                installation: Effort::new(4.0, 30),
                domain_configuration: Effort::new(30.0, 50),
                technical_configuration: Effort::new(6.0, 40),
            },
            deployment: vec![DeploymentType::CloudBased],
            interfaces: vec![Interface::Gui, Interface::Api],
            techniques: vec![Technique::MachineLearning, Technique::Probabilistic],
        },
        &cost_model,
    );
    sheet.add_solution(
        SolutionKpis {
            name: "in-house-hybrid".into(),
            lifecycle: LifecycleExpenditures {
                general_costs: 5_000.0,
                installation: Effort::new(40.0, 80),
                domain_configuration: Effort::new(20.0, 80),
                technical_configuration: Effort::new(40.0, 90),
            },
            deployment: vec![DeploymentType::Hybrid],
            interfaces: vec![Interface::Api, Interface::Cli],
            techniques: vec![Technique::RuleBased, Technique::MachineLearning],
        },
        &cost_model,
    );
    // Quality numbers measured on the selected benchmark go into the
    // same matrix — the holistic view the paper asks for.
    sheet.set("open-source-rules", "f1", 0.78);
    sheet.set("commercial-ml", "f1", 0.91);
    sheet.set("in-house-hybrid", "f1", 0.88);

    println!("\nsoft-KPI decision matrix:\n{}", sheet.render());

    // The aggregation framework: a use-case-specific score. Here:
    // f1 minus cost in units of 100k, requiring an API interface.
    let ranked = sheet.aggregate(|name, row| {
        let api = sheet
            .solution(name)
            .map(|s| s.interfaces.contains(&Interface::Api))
            .unwrap_or(false);
        if !api {
            return f64::NEG_INFINITY;
        }
        row.get("f1").copied().unwrap_or(0.0)
            - row.get("total cost").copied().unwrap_or(0.0) / 100_000.0
    });
    println!("ranking under 'f1 − cost/100k, must have API':");
    for (name, score) in &ranked {
        if score.is_finite() {
            println!("  {name:<18} {score:.3}");
        } else {
            println!("  {name:<18} excluded (no API)");
        }
    }
    assert!(ranked[0].1.is_finite());
}
