//! Vendored minimal serde derive macros.
//!
//! Emits empty marker-trait impls (`impl serde::Serialize for T {}`),
//! which is all the workspace needs — no field is ever serialized
//! through serde here. `#[serde(...)]` helper attributes are accepted
//! and ignored. Generic types are not supported (none exist in the
//! workspace); the macro panics with a clear message if one appears.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum` item token stream.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Ident(name) => {
                            let name = name.to_string();
                            // Reject generic items: the stub cannot emit
                            // correct impl generics without a full parser.
                            if let Some(TokenTree::Punct(p)) = iter.next() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "vendored serde_derive does not support generic type `{name}`"
                                    );
                                }
                            }
                            return name;
                        }
                        _ => continue,
                    }
                }
            }
        }
    }
    panic!("vendored serde_derive: could not find a struct/enum name")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
