//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free lock
//! API (`read()` / `write()` / `lock()` return guards directly).
//! Poisoned locks are recovered transparently, matching parking_lot's
//! no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
