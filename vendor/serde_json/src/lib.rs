//! Vendored minimal stand-in for `serde_json`.
//!
//! Provides a [`Value`] tree plus compact and pretty writers — enough to
//! emit benchmark/result JSON files (`BENCH_pairset.json`). There is no
//! parser and no serde integration; construct `Value`s directly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered like Rust's shortest float formatting;
    /// integral values render without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with stable (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(entries.into_iter().collect())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => ("\n", " ".repeat(w * (level + 1)), " ".repeat(w * level)),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Renders a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, None, 0);
    out
}

/// Renders a value as two-space-indented JSON.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, Some(2), 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_shapes() {
        let v = Value::object([
            ("name".to_string(), Value::from("pair\"set")),
            ("n".to_string(), Value::from(100_000u64)),
            ("speedup".to_string(), Value::from(3.5)),
            ("flags".to_string(), Value::from(vec![true, false])),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v);
        assert!(compact.contains("\"pair\\\"set\""));
        assert!(compact.contains("100000"));
        assert!(compact.contains("3.5"));
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"flags\": [\n"));
    }
}
