//! Vendored minimal stand-in for `serde_json`.
//!
//! Provides a [`Value`] tree, compact and pretty writers, and a small
//! recursive-descent parser ([`from_str`]) — enough to emit *and read
//! back* benchmark/result JSON files (`BENCH_pairset.json`, used by
//! the CI smoke-bench regression gate). There is no serde integration;
//! construct `Value`s directly and navigate with [`Value::get`] /
//! [`Value::as_f64`].

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (rendered like Rust's shortest float formatting;
    /// integral values render without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with stable (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(entries: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(entries.into_iter().collect())
    }

    /// Object member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Number(v as f64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Number(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close) = match indent {
        Some(w) => ("\n", " ".repeat(w * (level + 1)), " ".repeat(w * level)),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => escape(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Renders a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, None, 0);
    out
}

/// Renders a value as two-space-indented JSON.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out, Some(2), 0);
    out
}

/// A parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was expected or found.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document. Covers the subset this shim writes (all of
/// standard JSON except `\uXXXX` surrogate pairs, which decode as the
/// replacement character).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.at,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Consume a run of plain (unescaped) bytes in one slice.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.at + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_shapes() {
        let v = Value::object([
            ("name".to_string(), Value::from("pair\"set")),
            ("n".to_string(), Value::from(100_000u64)),
            ("speedup".to_string(), Value::from(3.5)),
            ("flags".to_string(), Value::from(vec![true, false])),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v);
        assert!(compact.contains("\"pair\\\"set\""));
        assert!(compact.contains("100000"));
        assert!(compact.contains("3.5"));
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"flags\": [\n"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::object([
            ("name".to_string(), Value::from("pair\"set\n")),
            ("n".to_string(), Value::from(100_000u64)),
            ("speedup".to_string(), Value::from(-3.5e-2)),
            ("flags".to_string(), Value::from(vec![true, false])),
            ("none".to_string(), Value::Null),
            ("empty_arr".to_string(), Value::Array(vec![])),
            ("empty_obj".to_string(), Value::object([])),
        ]);
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = from_str(r#"{"geo": 5.25, "ops": [{"op": "union"}], "tag": "x"}"#).unwrap();
        assert_eq!(doc.get("geo").and_then(Value::as_f64), Some(5.25));
        assert_eq!(doc.get("tag").and_then(Value::as_str), Some("x"));
        let ops = doc.get("ops").and_then(Value::as_array).unwrap();
        assert_eq!(ops[0].get("op").and_then(Value::as_str), Some("union"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("{} trailing").is_err());
        let e = from_str("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
        // \uXXXX escapes decode (surrogate halves degrade to U+FFFD).
        assert_eq!(
            from_str(r#""A\ud800""#).unwrap(),
            Value::String("A\u{fffd}".to_string())
        );
    }
}
