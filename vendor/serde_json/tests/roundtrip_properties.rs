//! Round-trip property tests for the vendored JSON shim: for randomly
//! generated `Value` trees, parse(write(v)) must reproduce `v`
//! exactly, and write(parse(write(v))) must reproduce the first
//! rendering byte for byte (a fixpoint after one round) — for both the
//! compact and the pretty writer. The CI smoke-bench regression gate
//! reads its recorded baselines through this parser, so a silent
//! write/parse asymmetry would corrupt the gate.

use proptest::prelude::*;
use proptest::TestRng;
use rand::Rng;
use serde_json::{from_str, to_string, to_string_pretty, Value};

/// Characters the string generator draws from: every escape class the
/// writer emits (quotes, backslashes, named escapes, raw control
/// characters that render as `\u00XX`), multi-byte UTF-8, and plain
/// ASCII filler.
const CHAR_POOL: &[char] = &[
    'a', 'b', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', '\u{1f}',
    'é', 'ß', '→', '❄', '🦀', '\u{7f}', '\u{fffd}',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| CHAR_POOL[rng.gen_range(0usize..CHAR_POOL.len())])
        .collect()
}

/// A finite `f64` spanning the writer's formatting classes: integral
/// values below the `1e15` integer-rendering cutoff, short decimals,
/// and large/tiny magnitudes that exercise shortest-float `Display`.
fn gen_number(rng: &mut TestRng) -> f64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        1 => rng.gen_range(-1_000_000i64..1_000_000) as f64 / 256.0,
        2 => (rng.gen::<f64>() - 0.5) * 1e18,
        _ => rng.gen::<f64>() * 1e-9,
    }
}

fn gen_value(rng: &mut TestRng, depth: usize) -> Value {
    // Leaves dominate; containers only below the depth cap.
    let pick = if depth == 0 {
        rng.gen_range(0u32..4)
    } else {
        rng.gen_range(0u32..6)
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0u32..2) == 0),
        2 => Value::Number(gen_number(rng)),
        3 => Value::String(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..4);
            Value::Array((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            Value::object((0..n).map(|_| (gen_string(rng), gen_value(rng, depth - 1))))
        }
    }
}

/// Strategy wrapper: generates one `Value` tree up to `max_depth`.
#[derive(Debug)]
struct JsonValue {
    max_depth: usize,
}

impl Strategy for JsonValue {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_value(rng, self.max_depth)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// parse ∘ write = identity, and write ∘ parse ∘ write = write —
    /// for the compact writer.
    #[test]
    fn compact_roundtrip_fixpoint(v in JsonValue { max_depth: 4 }) {
        let s1 = to_string(&v);
        let v2 = from_str(&s1).expect("writer output must parse");
        prop_assert_eq!(&v2, &v, "parse(write(v)) != v for {}", s1);
        let s2 = to_string(&v2);
        prop_assert_eq!(&s2, &s1, "write is not a fixpoint");
    }

    /// The same fixpoint through the pretty writer, plus cross-form
    /// agreement: pretty and compact renderings parse to the same
    /// value.
    #[test]
    fn pretty_roundtrip_fixpoint(v in JsonValue { max_depth: 4 }) {
        let p1 = to_string_pretty(&v);
        let v2 = from_str(&p1).expect("pretty output must parse");
        prop_assert_eq!(&v2, &v, "parse(pretty(v)) != v for {}", p1);
        prop_assert_eq!(to_string_pretty(&v2), p1, "pretty write is not a fixpoint");
        prop_assert_eq!(from_str(&to_string(&v)).unwrap(), v2, "compact and pretty disagree");
    }

    /// Numbers specifically: every generated finite double survives
    /// write → parse bit-exactly (integers take the `i64` fast path,
    /// the rest shortest-float `Display`).
    #[test]
    fn numbers_roundtrip_exactly(seed in 0u64..u64::MAX) {
        let mut rng = proptest::case_rng(seed, 0x5EED);
        for _ in 0..32 {
            let n = gen_number(&mut rng);
            let v = Value::Number(n);
            let parsed = from_str(&to_string(&v)).expect("number must parse");
            let back = parsed.as_f64().expect("number did not parse as a number");
            prop_assert!(
                back == n || (back == 0.0 && n == 0.0),
                "number {n} reparsed as {back}"
            );
        }
    }
}
