//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the subset Frost's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter`, range and tuple strategies,
//! `prop::collection::vec`, string strategies from a small regex subset
//! (`[a-z]{0,8}`-style classes, literals, groups, `?`), the
//! `proptest!` macro, and panic-based `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the generated inputs in the
//! message (cases are deterministic per `PROPTEST_SEED`, default 0, so
//! failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Base seed for the deterministic case stream.
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The deterministic RNG for one (property, case) pair — used by the
/// `proptest!` macro so user crates need no direct `rand` dependency.
pub fn case_rng(case: u64, salt: u64) -> TestRng {
    TestRng::seed_from_u64(base_seed() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (salt << 32))
}

/// A generator of random values (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (retries up to 1 000 times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        )
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String strategies: a `&str` pattern is a regex-subset generator.
///
/// Supported: literal characters, character classes `[a-z0-9_]` (with
/// ranges), groups `( … )`, the `?` quantifier on classes/groups, and
/// `{m,n}` / `{n}` repetition. This covers the patterns used in Frost's
/// tests (e.g. `"[a-z]{0,8}"`, `"[ -~]{0,12}"`,
/// `"[a-c]{1,3}( [a-c]{1,3})?"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = parse_pattern(&mut self.chars().peekable());
        let mut out = String::new();
        for node in &nodes {
            node.generate_into(rng, &mut out);
        }
        out
    }
}

enum PatternNode {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<PatternNode>),
    Repeat(Box<PatternNode>, usize, usize),
}

impl PatternNode {
    fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            PatternNode::Literal(c) => out.push(*c),
            PatternNode::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick).expect("class range"));
                        return;
                    }
                    pick -= span;
                }
            }
            PatternNode::Group(nodes) => {
                for n in nodes {
                    n.generate_into(rng, out);
                }
            }
            PatternNode::Repeat(node, min, max) => {
                let count = rng.gen_range(*min..=*max);
                for _ in 0..count {
                    node.generate_into(rng, out);
                }
            }
        }
    }
}

fn parse_pattern(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<PatternNode> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        chars.next();
        let node = match c {
            '[' => {
                let mut ranges = Vec::new();
                while let Some(cc) = chars.next() {
                    if cc == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("class range end");
                        if hi == ']' {
                            ranges.push((cc, cc));
                            ranges.push(('-', '-'));
                            break;
                        }
                        ranges.push((cc, hi));
                    } else {
                        ranges.push((cc, cc));
                    }
                }
                PatternNode::Class(ranges)
            }
            '(' => {
                let inner = parse_pattern(chars);
                assert_eq!(chars.next(), Some(')'), "unterminated group");
                PatternNode::Group(inner)
            }
            '\\' => PatternNode::Literal(chars.next().expect("escape")),
            other => PatternNode::Literal(other),
        };
        // Quantifiers.
        let node = match chars.peek() {
            Some('?') => {
                chars.next();
                PatternNode::Repeat(Box::new(node), 0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat min"),
                        n.trim().parse().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repeat count");
                        (n, n)
                    }
                };
                PatternNode::Repeat(Box::new(node), min, max)
            }
            _ => node,
        };
        nodes.push(node);
    }
    nodes
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt;
    use std::ops::Range;

    /// Size argument of [`vec`]: an exact count or a range.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy for a `Vec` of `inner`-generated values.
    pub struct VecStrategy<S> {
        inner: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(inner: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { inner, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run `cases` random cases each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::case_rng(case, line!() as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Counterpart of proptest's `prop_assume!`: skips the current case.
///
/// Expands to a `continue` of the enclosing case loop, so it must be
/// used at the top level of a `proptest!` body (not inside user loops)
/// — which is how Frost's tests use it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Panic-based counterpart of proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Panic-based counterpart of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Panic-based counterpart of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()));
            let p = Strategy::generate(&"[a-c]{1,3}( [a-c]{1,3})?", &mut rng);
            assert!(!p.is_empty());
            for token in p.split(' ') {
                assert!((1..=3).contains(&token.len()), "{p:?}");
                assert!(token.chars().all(|c| ('a'..='c').contains(&c)), "{p:?}");
            }
            let printable = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(printable.len() <= 12);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed_from_u64(9);
        let strat = prop::collection::vec(0u32..10, 3usize)
            .prop_map(|v| v.len())
            .prop_filter("never empty", |&n| n == 3);
        for _ in 0..10 {
            assert_eq!(Strategy::generate(&strat, &mut rng), 3);
        }
        let pair = (0u32..5, 0.0f64..1.0);
        let (a, b) = Strategy::generate(&pair, &mut rng);
        assert!(a < 5 && (0.0..1.0).contains(&b));
        assert_eq!(Strategy::generate(&Just(7u8), &mut rng), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0u32..100, 0..20usize), x in 1u32..50) {
            prop_assert!(v.len() < 20);
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
