//! Vendored minimal stand-in for `criterion`.
//!
//! Mirrors the API subset Frost's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple fixed-budget timing loop
//! instead of criterion's statistical machinery: after a warm-up, each
//! benchmark runs for ~`measurement_millis` (default 300 ms) or
//! `sample_size` batches, whichever is larger, and reports the mean
//! iteration time. Results are kept on the [`Criterion`] instance so
//! callers can post-process them (e.g. dump JSON).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// Benchmark identifier: function name plus parameter label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
pub struct Criterion {
    /// Completed measurements, in execution order.
    pub results: Vec<BenchResult>,
    measurement_millis: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            results: Vec::new(),
            measurement_millis: std::env::var("CRITERION_MEASUREMENT_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility (no CLI parsing in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_millis = d.as_millis() as u64;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(id, self.measurement_millis, &mut f);
        self.results.push(result);
        self
    }

    /// Opens a named group; ids become `group/...`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A benchmark group (name-prefixing wrapper).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement budget for the whole driver.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_millis = d.as_millis() as u64;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let result = run_bench(&full, self.criterion.measurement_millis, &mut f);
        self.criterion.results.push(result);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        let result = run_bench(&full, self.criterion.measurement_millis, &mut |b| {
            f(b, input)
        });
        self.criterion.results.push(result);
        self
    }

    /// Ends the group (no-op; results live on the `Criterion`).
    pub fn finish(self) {}
}

/// Passed to the closure; call [`Bencher::iter`] with the body to time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, budget_millis: u64, f: &mut F) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration: one iteration to estimate cost.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(budget_millis);
    // Aim for ~20 batches within the budget.
    let per_batch = ((budget.as_nanos() / 20 / once.as_nanos()).max(1)) as u64;
    let mut total_iters = 1u64;
    let mut total_time = once;
    let deadline = Instant::now() + budget;
    let mut batches = 0;
    while Instant::now() < deadline || batches < 2 {
        bencher.iterations = per_batch;
        f(&mut bencher);
        total_iters += per_batch;
        total_time += bencher.elapsed;
        batches += 1;
        if batches >= 1_000 {
            break;
        }
    }
    let mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
    println!("{id:<60} time: {}", fmt_ns(mean_ns));
    BenchResult {
        id: id.to_string(),
        mean_ns,
        iterations: total_iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( let _ = $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert!(c.results[0].iterations > 1);
    }

    #[test]
    fn group_prefixes_ids() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
            g.bench_with_input(BenchmarkId::new("p", 42), &3, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results[0].id, "g/f");
        assert_eq!(c.results[1].id, "g/p/42");
    }
}
