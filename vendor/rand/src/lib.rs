//! Vendored minimal stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface Frost uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`]'s `shuffle` / `choose_multiple`.
//!
//! `StdRng` is an xoshiro256** generator seeded through SplitMix64 —
//! not the ChaCha12 of the real crate, but a high-quality deterministic
//! PRNG, which is all the synthetic data generation needs. Streams
//! therefore differ from upstream `rand`: datasets generated here are
//! deterministic per seed but not bit-identical to ones generated with
//! the registry crate.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit values.
pub trait RngCore {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types uniform ranges can be sampled over (`rng.gen_range(lo..hi)`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as u128).wrapping_sub(lo as u128) + if inclusive { 1 } else { 0 };
                    debug_assert!(span > 0, "empty gen_range");
                    // Modulo sampling: the tiny bias is irrelevant for
                    // synthetic-data generation.
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*
    };
}

uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                    debug_assert!(span > 0, "empty gen_range");
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s whole domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling/shuffling helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (fewer when the
        /// slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher-Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=5u8);
            assert!(w <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            10,
            "choose_multiple must be without replacement"
        );
        assert_eq!(v.choose_multiple(&mut rng, 100).count(), 50);
    }
}
