//! Vendored minimal stand-in for `rayon`.
//!
//! Implements the slice-parallel subset Frost's matching pipeline uses —
//! `par_iter().map(f).collect()`, `into_par_iter()` over owned `Vec`s,
//! and `par_sort_unstable` — with *real* parallelism via
//! `std::thread::scope` and contiguous chunking (no work stealing).
//! Results preserve input order.
//!
//! Chunking follows a *minimum chunk size* discipline: the number of
//! chunks is capped at `n / min_len` (default `min_len` =
//! [`SEQUENTIAL_CUTOFF`]), so a tiny input — e.g. a diagram sweep over
//! three small experiments with default settings — collapses to a
//! single chunk and runs on the calling thread instead of paying one
//! thread spawn per item. Heavy per-item workloads opt into finer
//! sharding with [`ParIter::with_min_len`]. `RAYON_NUM_THREADS` caps
//! the thread count like the real crate.

/// Default minimum items per spawned chunk; inputs no longer than this
/// are processed on the calling thread.
pub const SEQUENTIAL_CUTOFF: usize = 2_048;

/// Chunk size for `n` items on `threads` workers with a `min_len`
/// floor. The chunk *count* is capped at `n / min_len`, then items are
/// split evenly, so no spawned chunk runs more than a rounding step
/// below `min_len` (a naive `div_ceil(threads).max(min_len)` would
/// leave a tiny remainder chunk — e.g. 2049 items at `min_len` 2048
/// must not spawn a 1-item thread) and an input of at most `min_len`
/// items stays on the calling thread entirely.
fn chunk_size(n: usize, threads: usize, min_len: usize) -> usize {
    let chunks = (n / min_len.max(1)).clamp(1, threads.max(1));
    n.div_ceil(chunks)
}

/// Number of worker threads used for parallel operations.
///
/// Re-reads `RAYON_NUM_THREADS` on every call (unlike the real crate's
/// fixed pool) so benchmarks can vary the thread count in-process. An
/// explicit setting may exceed the hardware thread count
/// (oversubscription), matching the real crate.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on up to [`current_num_threads`] scoped
/// threads, preserving order. `min_len` is the minimum chunk size: no
/// spawned chunk holds fewer items, and when one chunk would cover
/// everything the map runs on the calling thread.
fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F, min_len: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    let chunk = chunk_size(n, threads, min_len);
    if threads <= 1 || chunk >= n {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    out
}

/// Collection targets of [`collect`](ParMap::collect).
pub trait FromParallelIterator<T> {
    /// Builds the collection from the (ordered) mapped results.
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

impl<T: Ord> FromParallelIterator<T> for std::collections::BTreeSet<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v.into_iter().collect()
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
    cutoff: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            cutoff: self.cutoff,
        }
    }

    /// Sets the minimum chunk size: no spawned chunk holds fewer than
    /// `min` items, and an input of at most `min` items runs on the
    /// calling thread. Matches rayon's splitting-hint semantics; heavy
    /// per-item workloads pass `with_min_len(1)` to shard down to
    /// single items.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.cutoff = min.max(1);
        self
    }

    /// Parallel flat-map over per-item sequential iterators —
    /// rayon's `flat_map_iter`.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParFlatMapIter<'a, T, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(&'a T) -> I + Sync,
    {
        ParFlatMapIter {
            items: self.items,
            f,
            cutoff: self.cutoff,
        }
    }
}

/// A pending parallel flat-map (see [`ParIter::flat_map_iter`]).
pub struct ParFlatMapIter<'a, T, F> {
    items: &'a [T],
    f: F,
    cutoff: usize,
}

impl<'a, T: Sync, F> ParFlatMapIter<'a, T, F> {
    /// Executes the flat-map and collects results in item order.
    pub fn collect<C, R, I>(self) -> C
    where
        I: IntoIterator<Item = R> + Send,
        R: Send,
        F: Fn(&'a T) -> I + Sync,
        C: FromParallelIterator<R>,
    {
        let nested = par_map_slice(self.items, &self.f, self.cutoff);
        let mut flat = Vec::new();
        for group in nested {
            flat.extend(group);
        }
        C::from_par_vec(flat)
    }
}

/// A pending parallel map over a slice.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
    cutoff: usize,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map and collects the ordered results.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        C::from_par_vec(par_map_slice(self.items, &self.f, self.cutoff))
    }

    /// Executes the map and sums the results.
    pub fn sum<R>(self) -> R
    where
        R: Send + std::iter::Sum<R>,
        F: Fn(&'a T) -> R + Sync,
    {
        par_map_slice(self.items, &self.f, self.cutoff)
            .into_iter()
            .sum()
    }
}

/// `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Sync + 'a;

    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            cutoff: SEQUENTIAL_CUTOFF,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            items: self,
            cutoff: SEQUENTIAL_CUTOFF,
        }
    }
}

/// Owned parallel iterator over a `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Parallel map over owned items, preserving order.
    pub fn map<R, F>(self, f: F) -> IntoParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        IntoParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map over owned items.
pub struct IntoParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> IntoParMap<T, F> {
    /// Executes the map and collects the ordered results.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        let chunk = chunk_size(n, threads, SEQUENTIAL_CUTOFF);
        if threads <= 1 || chunk >= n {
            return C::from_par_vec(self.items.into_iter().map(&self.f).collect());
        }
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &self.f;
        let mut out: Vec<R> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
        });
        C::from_par_vec(out)
    }
}

/// `.into_par_iter()` on owned `Vec`s.
pub trait IntoParallelIterator {
    /// Owned element type.
    type Item: Send;

    /// A parallel iterator consuming the collection.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Parallel in-place sorting for `Copy` element slices.
pub trait ParallelSliceMut<T: Send> {
    /// Sorts the slice: parallel chunk sort + pairwise run merging.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy,
    {
        let n = self.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n < SEQUENTIAL_CUTOFF * 4 {
            self.sort_unstable();
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            for c in self.chunks_mut(chunk) {
                s.spawn(move || c.sort_unstable());
            }
        });
        // Pairwise-merge the sorted runs through a scratch buffer.
        let mut runs: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|start| (start, (start + chunk).min(n)))
            .collect();
        let mut scratch: Vec<T> = Vec::with_capacity(n);
        while runs.len() > 1 {
            let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
            for pair in runs.chunks(2) {
                if pair.len() == 1 {
                    next_runs.push(pair[0]);
                    continue;
                }
                let (a0, a1) = pair[0];
                let (b0, b1) = pair[1];
                debug_assert_eq!(a1, b0);
                scratch.clear();
                {
                    let (mut i, mut j) = (a0, b0);
                    while i < a1 && j < b1 {
                        if self[i] <= self[j] {
                            scratch.push(self[i]);
                            i += 1;
                        } else {
                            scratch.push(self[j]);
                            j += 1;
                        }
                    }
                    scratch.extend_from_slice(&self[i..a1]);
                    scratch.extend_from_slice(&self[j..b1]);
                }
                self[a0..b1].copy_from_slice(&scratch);
                next_runs.push((a0, b1));
            }
            runs = next_runs;
        }
    }
}

/// Glob import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..100_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out.len(), input.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn into_par_map_preserves_order() {
        let input: Vec<String> = (0..10_000).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out[9], 1);
        assert_eq!(out[9_999], 4);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut v: Vec<u64> = (0..200_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expected);
    }

    #[test]
    fn chunk_size_enforces_minimum() {
        // Even splitting when the input is large.
        assert_eq!(super::chunk_size(8_192, 4, 1), 2_048);
        // The min_len floor wins over even splitting: 3 items on 8
        // threads with the default floor stay in one chunk.
        assert_eq!(super::chunk_size(3, 8, super::SEQUENTIAL_CUTOFF), 3);
        // min_len 1 allows per-item chunks for heavy work.
        assert_eq!(super::chunk_size(3, 8, 1), 1);
        // One item over the floor must not spawn a 1-item remainder
        // chunk: the whole input stays in one chunk.
        assert_eq!(super::chunk_size(2_049, 8, 2_048), 2_049);
        // Twice the floor plus one splits evenly, not [4096, 1].
        assert_eq!(super::chunk_size(4_097, 8, 2_048), 2_049);
        // Degenerate parameters clamp instead of dividing by zero.
        assert_eq!(super::chunk_size(10, 0, 0), 10);
    }

    #[test]
    fn min_len_keeps_tiny_inputs_on_calling_thread() {
        // 3 items with the default floor: one chunk ⇒ sequential path,
        // order preserved, no spawn per item.
        let input = vec![10u32, 20, 30];
        let out: Vec<u32> = input.par_iter().map(|&x| x / 10).collect();
        assert_eq!(out, vec![1, 2, 3]);
        // Forcing min_len(1) still yields correct ordered results.
        let out: Vec<u32> = input.par_iter().with_min_len(1).map(|&x| x / 10).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn small_inputs_run_sequentially() {
        let input = vec![3u32, 1, 2];
        let out: Vec<u32> = input.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
