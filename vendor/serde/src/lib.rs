//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides
//! the *trait and derive surface* Frost relies on — `Serialize` /
//! `Deserialize` markers plus their derive macros — without any actual
//! serialization machinery. Frost persists data as CSV (see
//! `frost-storage::persist`), so nothing in the workspace calls
//! serialization methods; the derives only need to compile.
//!
//! Replace the `vendor/serde` path dependency with the registry crate to
//! regain real serialization.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>, S: Default> Deserialize<'de>
    for std::collections::HashMap<K, V, S>
{
}
impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {}
impl<'de, T: Deserialize<'de>, S: Default> Deserialize<'de> for std::collections::HashSet<T, S> {}
