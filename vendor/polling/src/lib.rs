//! A minimal safe wrapper over `poll(2)` — the readiness primitive the
//! `frost-server` event loop multiplexes its connections on.
//!
//! The workspace vendors no libc crate, so on Unix the one C function
//! is declared directly (the same pattern `frost-server` uses for
//! `signal(2)`). The API surface is the subset the event loop needs:
//!
//! * [`PollFd`] — one registered descriptor plus its interest set
//!   ([`POLLIN`] / [`POLLOUT`]) and kernel-reported readiness.
//! * [`poll`] — blocks until at least one descriptor is ready or the
//!   timeout elapses, retrying `EINTR` transparently.
//! * [`Waker`] — a self-connected datagram socket another thread can
//!   poke to interrupt a blocked [`poll`] (no `pipe(2)` needed, so it
//!   stays inside `std::net`).
//! * [`Source`] — `AsRawFd` without depending on a platform trait in
//!   caller signatures.
//!
//! On non-Unix targets [`poll`] returns `ErrorKind::Unsupported`; the
//! server falls back to its thread-per-connection path there.

use std::io;
use std::time::Duration;

/// Readable interest/readiness bit (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest/readiness bit (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hang-up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`: layout-compatible with the C definition so a
/// `&mut [PollFd]` can be handed to the kernel directly.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor (negative entries are ignored by the kernel).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT` bits).
    pub events: i16,
    /// Kernel-reported readiness, filled in by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A descriptor registered for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable — or in an error/hang-up
    /// state, which a reader must also wake for (the read reports it).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable (or errored: the write
    /// reports it).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Anything with a pollable descriptor. On non-Unix targets every
/// source reports `-1` (poll is unsupported there anyway).
pub trait Source {
    /// The raw descriptor to register.
    fn raw_fd(&self) -> i32;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> Source for T {
    fn raw_fd(&self) -> i32 {
        -1
    }
}

/// Blocks until a registered descriptor is ready, `timeout` elapses
/// (`None` = forever), or a signal arrives (`EINTR` is retried with
/// the timeout re-derived). Returns the number of ready descriptors
/// (0 = timeout).
///
/// Sub-millisecond timeouts round *up* to 1 ms — rounding down would
/// turn a short timed wait into a busy spin.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    }
    let deadline = timeout.map(|t| std::time::Instant::now() + t);
    loop {
        let millis: i32 = match deadline {
            None => -1,
            Some(d) => {
                let left = d.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    0
                } else {
                    // Round up: a 100 µs wait must not become 0 ms.
                    left.as_millis().saturating_add(1).min(i32::MAX as u128) as i32
                }
            }
        };
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, millis) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(not(unix))]
pub fn poll(_fds: &mut [PollFd], _timeout: Option<Duration>) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "poll(2) is only wrapped on unix targets",
    ))
}

/// Interrupts a thread blocked in [`poll`]: the waker's receive side
/// is registered like any other descriptor, and [`wake`](Self::wake)
/// makes it readable from any thread.
///
/// Implemented as a self-connected non-blocking UDP socket on
/// loopback — datagram semantics mean repeated wakes coalesce into a
/// bounded receive queue and [`drain`](Self::drain) empties it in a
/// few receives.
pub struct Waker {
    socket: std::net::UdpSocket,
}

impl Waker {
    /// Binds a fresh loopback waker.
    pub fn new() -> io::Result<Self> {
        let socket = std::net::UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(socket.local_addr()?)?;
        socket.set_nonblocking(true)?;
        Ok(Self { socket })
    }

    /// Makes the waker's descriptor readable (callable from any
    /// thread; a full socket buffer means a wake is already pending,
    /// which is all a wake needs to guarantee).
    pub fn wake(&self) {
        let _ = self.socket.send(&[1]);
    }

    /// The descriptor to register with [`POLLIN`].
    pub fn fd(&self) -> i32 {
        self.socket.raw_fd()
    }

    /// Consumes every pending wake (call after [`poll`] reports the
    /// waker readable, before processing — a wake sent during
    /// processing must stay visible to the *next* poll).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while self.socket.recv(&mut buf).is_ok() {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(listener.raw_fd(), POLLIN)];
        let started = std::time::Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "idle listener must time out");
        assert!(started.elapsed() >= Duration::from_millis(25));
        assert!(!fds[0].readable());
    }

    #[test]
    fn readable_data_is_reported() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut fds = [PollFd::new(server.raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn waker_interrupts_a_blocked_poll_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let poker = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            poker.wake();
            poker.wake();
        });
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1, "wake must interrupt the poll");
        assert!(fds[0].readable());
        t.join().unwrap();
        waker.drain();
        fds[0].revents = 0;
        let n = poll(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drained waker must be quiet");
    }
}
