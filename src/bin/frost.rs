//! The Frost command-line interface.
//!
//! Snowman exposes its full feature set through GUI, REST API and CLI;
//! this binary is the CLI of the Rust reproduction, working directly on
//! CSV files:
//!
//! ```text
//! frost profile  <dataset.csv>
//! frost evaluate <dataset.csv> <gold-pairs.csv> <experiment.csv>
//! frost diagram  <dataset.csv> <gold-pairs.csv> <experiment.csv> [samples]
//! frost compare  <dataset.csv> <gold-pairs.csv> <experiment.csv>...
//! frost venn     <dataset.csv> <gold-pairs.csv> <experiment.csv>...
//! frost match    <dataset.csv> [threshold]
//! frost sample   <store-dir> [scale]
//! frost snapshot save <store-dir> <file.frostb>
//! frost snapshot load <file.frostb> [export-dir]
//! frost serve    <store.frostb | store-dir> [port]
//! frost get      [--timing] <url>...
//! frost herd     <host:port> <connections> [probe-target]
//! frost import   <host:port[,host:port...]> <dataset> <name> <experiment.csv>
//! frost promote  <host:port>
//! ```
//!
//! Datasets are CSV with an `id` column; gold standards and experiments
//! are `id1,id2[,similarity]` pair lists (§3.1.1, §5.1). Store
//! directories are the CSV layout of `frost_storage::persist`;
//! `snapshot save/load` convert between that interchange format and
//! the binary `FROSTB` at-rest format, and `serve` starts the `frostd`
//! HTTP server on either. `import` uploads an experiment pair list to
//! a running server (`POST /experiments`), which journals it to the
//! WAL when serving a snapshot; a comma-separated authority list is
//! an ordered failover list — a replica's `Frost-Primary` hint and
//! unreachable endpoints re-point the upload. `promote` flips a
//! replica into a primary (`POST /replication/promote`), the manual
//! failover step after a primary is lost. `get --timing` reports
//! client-side
//! per-request latency (connection reuse, time to first byte, total)
//! on stderr, leaving the response bodies on stdout untouched.

use frost::core::dataset::CsvOptions;
use frost::core::diagram::{DiagramEngine, MetricDiagram};
use frost::core::metrics::confusion::ConfusionMatrix;
use frost::core::metrics::pair::PairMetric;
use frost::core::profiling::DatasetProfile;
use frost::storage::import::{
    export_experiment, import_experiment, import_gold_pairs, DatasetImporter,
};
use std::process::ExitCode;

/// A parsed CLI invocation.
#[derive(Debug, PartialEq)]
enum Command {
    Profile {
        dataset: String,
    },
    Evaluate {
        dataset: String,
        gold: String,
        experiment: String,
    },
    Diagram {
        dataset: String,
        gold: String,
        experiment: String,
        samples: usize,
    },
    Compare {
        dataset: String,
        gold: String,
        experiments: Vec<String>,
    },
    Venn {
        dataset: String,
        gold: String,
        experiments: Vec<String>,
    },
    Match {
        dataset: String,
        threshold: f64,
    },
    Sample {
        dir: String,
        scale: f64,
    },
    SnapshotSave {
        store_dir: String,
        file: String,
    },
    SnapshotLoad {
        file: String,
        export: Option<String>,
    },
    Serve {
        store: String,
        port: u16,
    },
    Get {
        urls: Vec<String>,
        timing: bool,
    },
    Herd {
        authority: String,
        connections: usize,
        probe: String,
    },
    Import {
        authority: String,
        dataset: String,
        name: String,
        file: String,
    },
    Promote {
        authority: String,
    },
}

const USAGE: &str = "\
usage:
  frost profile  <dataset.csv>
  frost evaluate <dataset.csv> <gold-pairs.csv> <experiment.csv>
  frost diagram  <dataset.csv> <gold-pairs.csv> <experiment.csv> [samples]
  frost compare  <dataset.csv> <gold-pairs.csv> <experiment.csv>...
  frost venn     <dataset.csv> <gold-pairs.csv> <experiment.csv>...
  frost match    <dataset.csv> [threshold]
  frost sample   <store-dir> [scale]
  frost snapshot save <store-dir> <file.frostb>
  frost snapshot load <file.frostb> [export-dir]
  frost serve    <store.frostb | store-dir> [port]
  frost get      [--timing] <url>...
  frost herd     <host:port> <connections> [probe-target]
  frost import   <host:port[,host:port...]> <dataset> <name> <experiment.csv>
  frost promote  <host:port>
";

fn parse_args(args: &[String]) -> Result<Command, String> {
    let cmd = args.first().ok_or_else(|| USAGE.to_string())?;
    match (cmd.as_str(), &args[1..]) {
        ("profile", [dataset]) => Ok(Command::Profile {
            dataset: dataset.clone(),
        }),
        ("evaluate", [dataset, gold, experiment]) => Ok(Command::Evaluate {
            dataset: dataset.clone(),
            gold: gold.clone(),
            experiment: experiment.clone(),
        }),
        ("diagram", [dataset, gold, experiment, rest @ ..]) if rest.len() <= 1 => {
            let samples = match rest.first() {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| format!("bad sample count {s:?}"))?,
                None => 20,
            };
            if samples < 2 {
                return Err("samples must be at least 2".into());
            }
            Ok(Command::Diagram {
                dataset: dataset.clone(),
                gold: gold.clone(),
                experiment: experiment.clone(),
                samples,
            })
        }
        ("compare", [dataset, gold, experiments @ ..]) if !experiments.is_empty() => {
            Ok(Command::Compare {
                dataset: dataset.clone(),
                gold: gold.clone(),
                experiments: experiments.to_vec(),
            })
        }
        ("venn", [dataset, gold, experiments @ ..]) if !experiments.is_empty() => {
            Ok(Command::Venn {
                dataset: dataset.clone(),
                gold: gold.clone(),
                experiments: experiments.to_vec(),
            })
        }
        ("match", [dataset, rest @ ..]) if rest.len() <= 1 => {
            let threshold = match rest.first() {
                Some(t) => t
                    .parse::<f64>()
                    .map_err(|_| format!("bad threshold {t:?}"))?,
                None => 0.8,
            };
            Ok(Command::Match {
                dataset: dataset.clone(),
                threshold,
            })
        }
        ("sample", [dir, rest @ ..]) if rest.len() <= 1 => {
            let scale = match rest.first() {
                Some(s) => {
                    let v = s.parse::<f64>().map_err(|_| format!("bad scale {s:?}"))?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err("scale must be positive".into());
                    }
                    v
                }
                None => 0.1,
            };
            Ok(Command::Sample {
                dir: dir.clone(),
                scale,
            })
        }
        ("snapshot", [sub, store_dir, file]) if sub == "save" => Ok(Command::SnapshotSave {
            store_dir: store_dir.clone(),
            file: file.clone(),
        }),
        ("snapshot", [sub, file, rest @ ..]) if sub == "load" && rest.len() <= 1 => {
            Ok(Command::SnapshotLoad {
                file: file.clone(),
                export: rest.first().map(|s| s.to_string()),
            })
        }
        ("serve", [store, rest @ ..]) if rest.len() <= 1 => {
            let port = match rest.first() {
                Some(p) => p.parse::<u16>().map_err(|_| format!("bad port {p:?}"))?,
                None => 7878,
            };
            Ok(Command::Serve {
                store: store.clone(),
                port,
            })
        }
        ("get", rest) if !rest.is_empty() => {
            let timing = rest[0] == "--timing";
            let urls = if timing { &rest[1..] } else { rest };
            if urls.is_empty() {
                return Err(USAGE.to_string());
            }
            Ok(Command::Get {
                urls: urls.to_vec(),
                timing,
            })
        }
        ("herd", [authority, connections, rest @ ..]) if rest.len() <= 1 => {
            let connections = connections
                .parse::<usize>()
                .map_err(|_| format!("bad connection count {connections:?}"))?;
            if connections == 0 {
                return Err("connection count must be positive".into());
            }
            Ok(Command::Herd {
                authority: authority.clone(),
                connections,
                probe: rest
                    .first()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "/healthz".to_string()),
            })
        }
        ("import", [authority, dataset, name, file]) => Ok(Command::Import {
            authority: authority.clone(),
            dataset: dataset.clone(),
            name: name.clone(),
            file: file.clone(),
        }),
        ("promote", [authority]) => Ok(Command::Promote {
            authority: authority.clone(),
        }),
        _ => Err(USAGE.to_string()),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Display labels for the experiment files: the file name, so output
/// is stable regardless of where the fixtures live — except when two
/// arguments share a file name (`runA/exp.csv runB/exp.csv`), which
/// falls back to the full path for the colliding entries so every
/// Venn-region label stays unambiguous.
fn labels_of(paths: &[String]) -> Vec<String> {
    let file_names: Vec<String> = paths
        .iter()
        .map(|path| {
            std::path::Path::new(path)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone())
        })
        .collect();
    file_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            if file_names.iter().filter(|other| *other == name).count() > 1 {
                paths[i].clone()
            } else {
                name.clone()
            }
        })
        .collect()
}

/// Imports a dataset, gold standard and experiment list, then renders
/// either the `compare` region listing or the `venn` table. The
/// set-heavy views hold every experiment at once, so the pair-set
/// engine is chosen per input by the cost model
/// ([`Experiment::pair_engine_hint`](frost::core::dataset::Experiment::pair_engine_hint)
/// combined over all participants) instead of statically. The gold
/// set rides last under the `<gold>` label.
fn run_venn_view(
    importer: &DatasetImporter,
    dataset: &str,
    gold: &str,
    experiments: &[String],
    table: bool,
) -> Result<(), String> {
    use frost::core::dataset::{ChunkedPairSet, PairAlgebra, PairEngine, PairSet, RoaringPairSet};

    let ds = importer
        .import("dataset", &read(dataset)?)
        .map_err(|e| e.to_string())?;
    let truth =
        import_gold_pairs(&ds, &read(gold)?, CsvOptions::comma()).map_err(|e| e.to_string())?;
    let mut exps = Vec::with_capacity(experiments.len());
    for (i, path) in experiments.iter().enumerate() {
        exps.push(
            import_experiment(&format!("exp-{i}"), &ds, &read(path)?, CsvOptions::comma())
                .map_err(|e| e.to_string())?,
        );
    }
    let mut names = labels_of(experiments);
    names.push("<gold>".into());

    fn render<S: PairAlgebra>(
        exps: &[frost::core::dataset::Experiment],
        truth: &frost::core::clustering::Clustering,
        names: &[String],
        table: bool,
    ) {
        let mut sets: Vec<S> = exps.iter().map(|e| e.pair_set_as::<S>()).collect();
        sets.push(S::from_pairs(truth.intra_pairs()));
        let regions = frost::core::explore::setops::venn_regions(&sets);
        if table {
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            print!("{}", frost::core::report::venn_table(&regions, &name_refs));
        } else {
            for region in regions {
                let members: Vec<&str> = names
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| region.contains_set(i))
                    .map(|(_, n)| n.as_str())
                    .collect();
                println!(
                    "{:>7} pairs exactly in: {}",
                    region.pairs.len(),
                    members.join(" ∩ ")
                );
            }
        }
    }

    match PairEngine::combined(exps.iter().map(|e| e.pair_engine_hint())) {
        PairEngine::Packed => render::<PairSet>(&exps, &truth, &names, table),
        PairEngine::Chunked => render::<ChunkedPairSet>(&exps, &truth, &names, table),
        PairEngine::Roaring => render::<RoaringPairSet>(&exps, &truth, &names, table),
    }
    Ok(())
}

fn run(command: Command) -> Result<(), String> {
    let importer = DatasetImporter::standard();
    match command {
        Command::Profile { dataset } => {
            let ds = importer
                .import("dataset", &read(&dataset)?)
                .map_err(|e| e.to_string())?;
            let p = DatasetProfile::without_truth(&ds);
            println!("records:           {}", p.tuple_count);
            println!("attributes:        {}", p.schema_complexity);
            println!("sparsity:          {:.4}", p.sparsity);
            println!("textuality:        {:.4}", p.textuality);
            for (name, sp) in ds.schema().attributes().iter().zip(&p.attribute_sparsity) {
                println!("  sparsity[{name}] = {sp:.4}");
            }
        }
        Command::Evaluate {
            dataset,
            gold,
            experiment,
        } => {
            let ds = importer
                .import("dataset", &read(&dataset)?)
                .map_err(|e| e.to_string())?;
            let truth = import_gold_pairs(&ds, &read(&gold)?, CsvOptions::comma())
                .map_err(|e| e.to_string())?;
            let exp =
                import_experiment("experiment", &ds, &read(&experiment)?, CsvOptions::comma())
                    .map_err(|e| e.to_string())?;
            let matrix = ConfusionMatrix::from_experiment(&exp, &truth, ds.len());
            println!(
                "TP {}  FP {}  FN {}  TN {}",
                matrix.true_positives,
                matrix.false_positives,
                matrix.false_negatives,
                matrix.true_negatives
            );
            for metric in PairMetric::ALL {
                println!("{metric}: {:.4}", metric.compute(&matrix));
            }
        }
        Command::Diagram {
            dataset,
            gold,
            experiment,
            samples,
        } => {
            let ds = importer
                .import("dataset", &read(&dataset)?)
                .map_err(|e| e.to_string())?;
            let truth = import_gold_pairs(&ds, &read(&gold)?, CsvOptions::comma())
                .map_err(|e| e.to_string())?;
            let exp =
                import_experiment("experiment", &ds, &read(&experiment)?, CsvOptions::comma())
                    .map_err(|e| e.to_string())?;
            println!("threshold,recall,precision");
            for (t, r, p) in MetricDiagram::precision_recall().compute(
                DiagramEngine::Optimized,
                ds.len(),
                &truth,
                &exp,
                samples,
            ) {
                println!("{t},{r:.4},{p:.4}");
            }
        }
        Command::Compare {
            dataset,
            gold,
            experiments,
        } => run_venn_view(&importer, &dataset, &gold, &experiments, false)?,
        Command::Venn {
            dataset,
            gold,
            experiments,
        } => run_venn_view(&importer, &dataset, &gold, &experiments, true)?,
        Command::Match { dataset, threshold } => {
            let ds = importer
                .import("dataset", &read(&dataset)?)
                .map_err(|e| e.to_string())?;
            // A generic matcher over every attribute, token blocking on
            // all attributes.
            let pipeline = frost::matchers::pipeline::MatchingPipeline {
                name: "frost-cli".into(),
                preparer: Some(frost::matchers::prepare::Preparer::standard()),
                blocker: Box::new(frost::matchers::blocking::TokenBlocking {
                    attributes: ds.schema().attributes().to_vec(),
                    max_token_frequency: 100,
                }),
                model: Box::new(
                    frost::matchers::decision::threshold::WeightedAverage::uniform(
                        ds.schema().attributes().iter().map(|a| {
                            frost::matchers::features::Comparator::new(
                                a.clone(),
                                frost::matchers::similarity::Measure::TokenJaccard,
                            )
                        }),
                        threshold,
                    ),
                ),
                clustering: frost::matchers::pipeline::ClusteringMethod::TransitiveClosure,
            };
            let run = pipeline.run(&ds);
            print!(
                "{}",
                export_experiment(&ds, &run.experiment, CsvOptions::comma())
            );
        }
        Command::Sample { dir, scale } => {
            // The preinstalled datasets + two synthetic experiments
            // each, written as a CSV store directory — the sample
            // store the snapshot and serving docs/CI work against.
            let mut store = frost::preinstalled_store(scale);
            for name in store.dataset_names() {
                let truth = store
                    .gold_standard(&name)
                    .map_err(|e| e.to_string())?
                    .clone();
                let records = store.dataset(&name).map_err(|e| e.to_string())?.len();
                let matches = (records / 2).max(4);
                for (i, fraction) in [(1usize, 0.9), (2usize, 0.6)] {
                    let exp = frost::datagen::experiments::synthetic_experiment(
                        format!("{name}-run{i}"),
                        &truth,
                        matches,
                        fraction,
                        42 + i as u64,
                    );
                    store
                        .add_experiment(&name, exp, None)
                        .map_err(|e| e.to_string())?;
                }
            }
            frost::storage::persist::save(&store, &dir).map_err(|e| e.to_string())?;
            println!(
                "wrote sample store to {dir}: {} dataset(s), {} experiment(s)",
                store.dataset_names().len(),
                store.experiment_names(None).len()
            );
        }
        Command::SnapshotSave { store_dir, file } => {
            let store = frost::storage::persist::load(&store_dir).map_err(|e| e.to_string())?;
            frost::storage::snapshot::save(&store, &file).map_err(|e| e.to_string())?;
            let bytes = std::fs::metadata(&file).map(|m| m.len()).unwrap_or(0);
            println!(
                "wrote {file}: {} dataset(s), {} experiment(s), {bytes} bytes",
                store.dataset_names().len(),
                store.experiment_names(None).len()
            );
        }
        Command::SnapshotLoad { file, export } => {
            let store = frost::storage::snapshot::load(&file).map_err(|e| e.to_string())?;
            println!("loaded {file}");
            for name in store.dataset_names() {
                let ds = store.dataset(&name).map_err(|e| e.to_string())?;
                let gold = if store.gold_standard(&name).is_ok() {
                    "with gold"
                } else {
                    "no gold"
                };
                println!("  dataset {name}: {} record(s), {gold}", ds.len());
            }
            for name in store.experiment_names(None) {
                let stored = store.experiment(&name).map_err(|e| e.to_string())?;
                println!(
                    "  experiment {name} on {}: {} pair(s)",
                    stored.dataset,
                    stored.experiment.len()
                );
            }
            if let Some(dir) = export {
                frost::storage::persist::save(&store, &dir).map_err(|e| e.to_string())?;
                println!("exported CSV store to {dir}");
            }
        }
        Command::Serve { store, port } => {
            frost_server::run_daemon(
                &store,
                "127.0.0.1",
                port,
                frost_server::ServeOptions::default(),
                frost::storage::FsyncPolicy::Always,
            )?;
        }
        Command::Get { urls, timing } => {
            // Consecutive URLs to the same authority share one
            // keep-alive connection — `frost get url1 url2 …` is a
            // multi-request sequence, not N cold connections.
            let mut connection: Option<(String, frost_server::client::Connection)> = None;
            for url in &urls {
                let (authority, target) = frost_server::client::split_url(url)?;
                let reusable = matches!(&connection, Some((a, _)) if a == authority);
                if !reusable {
                    connection = Some((
                        authority.to_string(),
                        frost_server::client::Connection::open(authority)?,
                    ));
                }
                let conn = &mut connection.as_mut().expect("connection just ensured").1;
                let (status, body) = conn.get(target)?;
                println!("{body}");
                // Timing goes to stderr so stdout stays exactly the
                // response bodies (scripts pipe it).
                if timing {
                    if let Some(t) = conn.last_timing() {
                        eprintln!(
                            "timing {url}: status={status} reused={} \
                             ttfb_ms={:.3} total_ms={:.3}",
                            t.reused,
                            t.ttfb.as_secs_f64() * 1e3,
                            t.total.as_secs_f64() * 1e3
                        );
                    }
                }
                if status >= 400 {
                    return Err(format!("HTTP {status}"));
                }
            }
        }
        Command::Herd {
            authority,
            connections,
            probe,
        } => {
            // The CI smoke gate: hold a mass of idle keep-alive
            // connections open against a running frostd, prove an
            // active probe still completes through the event loop,
            // then keep the herd open until stdin closes — the driver
            // runs its own traffic while the idle mass sits here.
            let mut herd = frost_server::client::IdleHerd::open(&authority, connections)?;
            println!("herd: {} idle connection(s) open", herd.len());
            let (status, body) = herd.probe(herd.len() - 1, &probe)?;
            println!("probe {probe}: HTTP {status}");
            println!("{body}");
            if status >= 400 {
                return Err(format!("HTTP {status}"));
            }
            println!("herd: holding until stdin closes");
            let mut sink = String::new();
            let _ = std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink);
            println!("herd: released");
        }
        Command::Import {
            authority,
            dataset,
            name,
            file,
        } => {
            let csv = read(&file)?;
            // A comma-separated authority is an ordered failover
            // list: the upload prefers the first reachable endpoint
            // and follows a replica's Frost-Primary hint.
            let endpoints: Vec<String> = authority.split(',').map(str::to_string).collect();
            let mut conn = frost_server::client::Connection::open_failover(
                &endpoints,
                frost_server::client::RetryPolicy::default(),
            )?;
            let target = format!("/experiments?dataset={dataset}&name={name}");
            let first_authority = conn.authority().to_string();
            let (mut status, mut body) = conn.post(&target, csv.as_bytes())?;
            if status == 503 && conn.authority() != first_authority {
                // A replica declined the write and its Frost-Primary
                // hint re-pointed the connection: the first node never
                // applied anything, so one retry is safe.
                (status, body) = conn.post(&target, csv.as_bytes())?;
            }
            println!("{body}");
            if status >= 400 {
                return Err(format!("HTTP {status}"));
            }
        }
        Command::Promote { authority } => {
            let mut conn = frost_server::client::Connection::open(&authority)?;
            let (status, body) = conn.post("/replication/promote", &[])?;
            println!("{body}");
            if status >= 400 {
                return Err(format!("HTTP {status}"));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_profile() {
        assert_eq!(
            parse_args(&s(&["profile", "d.csv"])).unwrap(),
            Command::Profile {
                dataset: "d.csv".into()
            }
        );
    }

    #[test]
    fn parse_evaluate_and_diagram() {
        assert!(matches!(
            parse_args(&s(&["evaluate", "d.csv", "g.csv", "e.csv"])).unwrap(),
            Command::Evaluate { .. }
        ));
        let d = parse_args(&s(&["diagram", "d.csv", "g.csv", "e.csv", "50"])).unwrap();
        assert_eq!(
            d,
            Command::Diagram {
                dataset: "d.csv".into(),
                gold: "g.csv".into(),
                experiment: "e.csv".into(),
                samples: 50
            }
        );
        // Default sample count.
        assert!(matches!(
            parse_args(&s(&["diagram", "d.csv", "g.csv", "e.csv"])).unwrap(),
            Command::Diagram { samples: 20, .. }
        ));
        assert!(parse_args(&s(&["diagram", "d.csv", "g.csv", "e.csv", "1"])).is_err());
        assert!(parse_args(&s(&["diagram", "d.csv", "g.csv", "e.csv", "x"])).is_err());
    }

    #[test]
    fn parse_compare_and_match() {
        let c = parse_args(&s(&["compare", "d.csv", "g.csv", "a.csv", "b.csv"])).unwrap();
        assert!(matches!(c, Command::Compare { experiments, .. } if experiments.len() == 2));
        assert!(parse_args(&s(&["compare", "d.csv", "g.csv"])).is_err());
        let v = parse_args(&s(&["venn", "d.csv", "g.csv", "a.csv"])).unwrap();
        assert!(matches!(v, Command::Venn { experiments, .. } if experiments.len() == 1));
        assert!(parse_args(&s(&["venn", "d.csv", "g.csv"])).is_err());
        assert!(matches!(
            parse_args(&s(&["match", "d.csv"])).unwrap(),
            Command::Match { threshold, .. } if (threshold - 0.8).abs() < 1e-12
        ));
        assert!(parse_args(&s(&["match", "d.csv", "abc"])).is_err());
    }

    #[test]
    fn labels_shorten_unique_names_and_keep_colliding_paths() {
        let paths = s(&["runA/exp.csv", "runB/exp.csv", "other.csv"]);
        assert_eq!(
            labels_of(&paths),
            s(&["runA/exp.csv", "runB/exp.csv", "other.csv"])
        );
        let distinct = s(&["runA/e1.csv", "runB/e2.csv"]);
        assert_eq!(labels_of(&distinct), s(&["e1.csv", "e2.csv"]));
    }

    #[test]
    fn parse_herd() {
        assert_eq!(
            parse_args(&s(&["herd", "127.0.0.1:7878", "500"])).unwrap(),
            Command::Herd {
                authority: "127.0.0.1:7878".into(),
                connections: 500,
                probe: "/healthz".into(),
            }
        );
        assert_eq!(
            parse_args(&s(&["herd", "127.0.0.1:7878", "100", "/stats"])).unwrap(),
            Command::Herd {
                authority: "127.0.0.1:7878".into(),
                connections: 100,
                probe: "/stats".into(),
            }
        );
        assert!(parse_args(&s(&["herd", "127.0.0.1:7878", "0"])).is_err());
        assert!(parse_args(&s(&["herd", "127.0.0.1:7878", "abc"])).is_err());
        assert!(parse_args(&s(&["herd", "127.0.0.1:7878"])).is_err());
    }

    #[test]
    fn parse_get_timing() {
        assert_eq!(
            parse_args(&s(&["get", "http://h:1/a", "http://h:1/b"])).unwrap(),
            Command::Get {
                urls: s(&["http://h:1/a", "http://h:1/b"]),
                timing: false,
            }
        );
        assert_eq!(
            parse_args(&s(&["get", "--timing", "http://h:1/a"])).unwrap(),
            Command::Get {
                urls: s(&["http://h:1/a"]),
                timing: true,
            }
        );
        // --timing alone has no URL to fetch.
        assert!(parse_args(&s(&["get", "--timing"])).is_err());
        assert!(parse_args(&s(&["get"])).is_err());
    }

    #[test]
    fn parse_garbage_is_usage() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["bogus"])).is_err());
        assert!(parse_args(&s(&["profile"])).is_err());
    }

    /// Writes the fixture files once per test into a unique directory.
    fn fixture(tag: &str) -> (std::path::PathBuf, String, String, String) {
        let dir = std::env::temp_dir().join(format!("frost-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("ds.csv");
        let gold = dir.join("gold.csv");
        let exp = dir.join("exp.csv");
        std::fs::write(
            &ds,
            "id,name,city\na,Ann Smith,Berlin\nb,Anne Smith,Berlin\nc,Bob Jones,Potsdam\nd,Bobby Jones,Potsdam\n",
        )
        .unwrap();
        std::fs::write(&gold, "id1,id2\na,b\nc,d\n").unwrap();
        std::fs::write(&exp, "id1,id2,similarity\na,b,0.9\na,c,0.4\n").unwrap();
        (
            dir.clone(),
            ds.to_string_lossy().into_owned(),
            gold.to_string_lossy().into_owned(),
            exp.to_string_lossy().into_owned(),
        )
    }

    #[test]
    fn run_profile_evaluate_diagram_compare() {
        let (dir, ds, gold, exp) = fixture("run");
        run(Command::Profile {
            dataset: ds.clone(),
        })
        .unwrap();
        run(Command::Evaluate {
            dataset: ds.clone(),
            gold: gold.clone(),
            experiment: exp.clone(),
        })
        .unwrap();
        run(Command::Diagram {
            dataset: ds.clone(),
            gold: gold.clone(),
            experiment: exp.clone(),
            samples: 3,
        })
        .unwrap();
        run(Command::Compare {
            dataset: ds.clone(),
            gold: gold.clone(),
            experiments: vec![exp.clone()],
        })
        .unwrap();
        run(Command::Venn {
            dataset: ds.clone(),
            gold,
            experiments: vec![exp],
        })
        .unwrap();
        run(Command::Match {
            dataset: ds,
            threshold: 0.4,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn run_reports_missing_files_and_bad_content() {
        let err = run(Command::Profile {
            dataset: "/nonexistent/x.csv".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot read"));

        let (dir, ds, _, _) = fixture("bad");
        let bad_gold = dir.join("bad_gold.csv");
        std::fs::write(&bad_gold, "id1,id2\na,zzz\n").unwrap();
        let err = run(Command::Evaluate {
            dataset: ds,
            gold: bad_gold.to_string_lossy().into_owned(),
            experiment: "/nonexistent/e.csv".into(),
        })
        .unwrap_err();
        assert!(err.contains("unknown record"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
