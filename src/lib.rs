//! # frost
//!
//! Facade crate for the Frost data-matching benchmark platform — a Rust
//! reproduction of Graf et al., *"Frost: A Platform for Benchmarking and
//! Exploring Data Matching Results"*, PVLDB 15(12), 2022.
//!
//! Re-exports the workspace crates:
//!
//! * [`core`] — metrics, diagrams, soft KPIs, exploration, profiling.
//! * [`matchers`] — the matching-solution substrate (similarity
//!   functions, blocking, decision models, the 6-step pipeline).
//! * [`datagen`] — synthetic benchmark datasets with gold standards.
//! * [`storage`] — the benchmark store (Snowman back-end substrate).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use frost_core as core;
pub use frost_datagen as datagen;
pub use frost_matchers as matchers;
pub use frost_storage as storage;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use frost_core::prelude::*;
}

/// A [`BenchmarkStore`](frost_storage::BenchmarkStore) preloaded with
/// small synthetic stand-ins for the popular benchmark datasets Snowman
/// ships ("a range of preinstalled benchmark datasets (including ground
/// truth annotations)", §5.1): Cora-like, FreeDB-CDs-like and a
/// SIGMOD-contest-like product dataset, each with its gold standard.
///
/// `scale` sizes the datasets relative to the originals (e.g. `0.1` ≈
/// 188-record Cora). Generation is deterministic.
pub fn preinstalled_store(scale: f64) -> frost_storage::BenchmarkStore {
    let mut store = frost_storage::BenchmarkStore::new();
    for preset in [
        frost_datagen::presets::cora(scale),
        frost_datagen::presets::freedb_cds(scale),
        frost_datagen::presets::altosight_x4(scale),
    ] {
        let generated = frost_datagen::generator::generate(&preset.config);
        let name = generated.dataset.name().to_string();
        store
            .add_dataset(generated.dataset)
            .expect("preset names are distinct");
        store
            .set_gold_standard(&name, generated.truth)
            .expect("dataset was just added");
    }
    store
}

#[cfg(test)]
mod tests {
    #[test]
    fn preinstalled_store_has_datasets_and_gold() {
        let store = super::preinstalled_store(0.1);
        let names = store.dataset_names();
        assert_eq!(names.len(), 3);
        for name in &names {
            let ds = store.dataset(name).unwrap();
            assert!(!ds.is_empty());
            let truth = store.gold_standard(name).unwrap();
            assert_eq!(truth.num_records(), ds.len());
        }
        assert!(names.contains(&"cora".to_string()));
    }
}
